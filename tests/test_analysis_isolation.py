"""Shard-isolation analyzer: ownership inference, DET017-DET021, the
shard manifest, and the planted cross-shard leaks.

The planted tests mutate *real* repo sources (a cross-shard mutation in
``Cluster``, a cluster-state read in the scheduler) and assert the right
rule catches each — the end-to-end failure mode the sharded-cluster
runner needs closed before it can exist.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.isolation import (ISOLATION_RULES, build_manifest,
                                      check_isolation)
from repro.analysis.linter import (ProgramFile, iter_python_files,
                                   lint_paths_program, lint_program,
                                   lint_source)
from repro.analysis.ownership import (OwnershipModel, file_domain,
                                      stream_domain)

ROOT = Path(__file__).parent.parent
SRC = ROOT / "src" / "repro"
FIXTURES = Path(__file__).parent / "fixtures" / "lint"
CLUSTER_PY = SRC / "cluster" / "cluster.py"


@pytest.fixture(scope="module")
def real_program():
    return [ProgramFile.load(p) for p in iter_python_files([SRC])]


@pytest.fixture(scope="module")
def real_model(real_program):
    return OwnershipModel.build(real_program)


# -- domain seeding ----------------------------------------------------------

def test_package_seeding():
    assert file_domain(("src", "repro", "kernel", "cfq.py")) \
        == ("node", False)
    assert file_domain(("src", "repro", "faults", "plane.py")) \
        == ("cluster", False)
    assert file_domain(("src", "repro", "sim", "core.py")) \
        == ("sim-kernel", False)
    assert file_domain(("src", "repro", "metrics", "latency.py")) \
        == ("analysis-only", False)
    assert file_domain(("benchmarks", "bench_kernel.py")) \
        == ("harness", False)


def test_file_refinements_override_the_package():
    # StorageNode is per-node state even though it lives under cluster/.
    assert file_domain(("src", "repro", "cluster", "node.py")) \
        == ("node", False)
    # The admission guard sits inside OS.read on the node.
    assert file_domain(("src", "repro", "slo_control", "admission.py")) \
        == ("node", False)
    assert file_domain(("src", "repro", "obs", "bus.py")) \
        == ("sim-kernel", False)


def test_innermost_directory_wins():
    # A fixture tree mirroring the package layout gets the package's
    # domain — tests/ further out does not mask it.
    assert file_domain(
        ("tests", "fixtures", "lint", "cluster", "x.py")) \
        == ("cluster", False)


def test_pragma_overrides_the_tables():
    src = "# repro: domain[node]\nX = 1\n"
    assert file_domain(("src", "repro", "metrics", "x.py"), src) \
        == ("node", False)
    frozen = "# repro: domain[cluster:frozen]\nX = 1\n"
    assert file_domain(("a.py",), frozen) == ("cluster", True)


def test_stream_domains():
    assert stream_domain("kernel/ncq/0") == "node"
    assert stream_domain("slo_control/shed/1") == "cluster"
    assert stream_domain("sim/ties") == "sim-kernel"
    assert stream_domain("warmup") is None          # no owner prefix


# -- whole-tree ownership inference ------------------------------------------

def test_real_tree_infers_cluster_wiring(real_model):
    cluster_key = (str(CLUSTER_PY), "Cluster")
    nodes = real_model.attr[(cluster_key, "nodes")]
    assert nodes.domain == "node" and nodes.container
    assert nodes.cls == (str(SRC / "cluster" / "node.py"), "StorageNode")
    network = real_model.attr[(cluster_key, "network")]
    assert network.domain == "cluster"


def test_real_tree_infers_storage_node_internals(real_model):
    node_key = (str(SRC / "cluster" / "node.py"), "StorageNode")
    assert real_model.attr[(node_key, "os")].domain == "node"
    assert real_model.attr[(node_key, "sim")].domain == "sim-kernel"


def test_declared_frozen_placement_table(real_model):
    own = real_model.class_domain[(str(SRC / "engines" / "kv.py"),
                                   "KeySpace")]
    assert own.domain == "cluster" and own.frozen and own.declared


def test_real_tree_is_isolation_clean(real_program):
    findings = lint_program(real_program, rules=set(ISOLATION_RULES))
    assert findings == [], "\n".join(f.render() for f in findings)


# -- planted leaks in real sources -------------------------------------------

def _lint_with_replacement(real_program, path, mutated_source):
    program = [ProgramFile(mutated_source, pf.path)
               if pf.path == str(path) else pf for pf in real_program]
    return lint_program(program, rules=set(ISOLATION_RULES))


def test_planted_cross_shard_mutation_caught_by_det017(real_program):
    source = CLUSTER_PY.read_text()
    planted = source + (
        "\n"
        "    def quarantine(self, node_id):\n"
        "        self.nodes[node_id].draining = True\n"
    )
    findings = _lint_with_replacement(real_program, CLUSTER_PY,
                                      planted.replace(
                                          "\n\n    def quarantine",
                                          "\n    def quarantine", 1))
    assert [f.rule for f in findings] == ["DET017"]
    assert findings[0].path == str(CLUSTER_PY)
    assert "node" in findings[0].message
    # Attributed to the planted line, not somewhere in the fixpoint.
    assert findings[0].line > len(source.splitlines()) - 2


def test_planted_foreign_rng_stream_caught_by_det019(real_program):
    scheduler = SRC / "kernel" / "scheduler.py"
    source = scheduler.read_text()
    planted = source + (
        "\n\ndef _shed_jitter(sim):\n"
        "    return sim.rng('slo_control/shed').random()\n"
    )
    findings = _lint_with_replacement(real_program, scheduler, planted)
    assert [f.rule for f in findings] == ["DET019"]
    assert "slo_control/shed" in findings[0].message


def test_wiring_methods_are_exempt(real_program):
    # The same cross-domain write inside __init__ is composition, not a
    # steady-state crossing.
    source = CLUSTER_PY.read_text()
    planted = source.replace(
        "        self.health = None\n",
        "        self.health = None\n"
        "        nodes[0].draining = False\n", 1)
    assert planted != source
    assert _lint_with_replacement(real_program, CLUSTER_PY, planted) == []


# -- single-file rule behaviors ----------------------------------------------

def test_det017_through_inferred_cross_file_ownership(tmp_path):
    # No pragmas anywhere: ownership flows from the kernel/ class through
    # the constructor call into the cluster-side attribute.
    sched = tmp_path / "repro" / "kernel" / "sched.py"
    router = tmp_path / "repro" / "cluster" / "router.py"
    sched.parent.mkdir(parents=True)
    router.parent.mkdir(parents=True)
    sched.write_text(
        "class Scheduler:\n"
        "    def __init__(self):\n"
        "        self.queue = []\n")
    router.write_text(
        "from repro.kernel.sched import Scheduler\n"
        "class Router:\n"
        "    def __init__(self):\n"
        "        self.sched = Scheduler()\n"
        "    def steal(self, req):\n"
        "        self.sched.queue.append(req)\n")
    findings = lint_paths_program([tmp_path])
    assert [f.rule for f in findings] == ["DET017"]
    assert findings[0].path == str(router)


def test_det018_respects_sanctioned_calls():
    src = (
        "class Dispatcher:\n"
        "    def __init__(self, net):\n"
        "        # repro: owner[cluster] the sanctioned boundary object\n"
        "        self.net = net\n"
        "    def dispatch(self, shard, req):\n"
        "        self.net.send(shard, req)\n"
    )
    assert lint_source(src, "kernel/dispatch.py") == []


def test_det018_only_binds_node_domain_code():
    # The identical read from cluster-domain code is that domain reading
    # its own state.
    src = (
        "class Controller:\n"
        "    def __init__(self, membership):\n"
        "        # repro: owner[cluster] live membership map\n"
        "        self.membership = membership\n"
        "    def scan(self):\n"
        "        return self.membership.leader\n"
    )
    assert lint_source(src, "cluster/ctl.py") == []
    findings = lint_source(src, "kernel/ctl.py")
    assert [f.rule for f in findings] == ["DET018"]


def test_det021_names_reaching_domains(tmp_path):
    shared = tmp_path / "repro" / "kernel" / "shared.py"
    user = tmp_path / "repro" / "cluster" / "user.py"
    shared.parent.mkdir(parents=True)
    user.parent.mkdir(parents=True)
    shared.write_text("TABLE = {}\n")
    user.write_text("from repro.kernel import shared\n"
                    "def peek():\n"
                    "    return shared.TABLE\n")
    findings = lint_paths_program([tmp_path])
    det021 = [f for f in findings if f.rule == "DET021"]
    assert len(det021) == 1
    # Both runtime domains can reach the module: the message says so.
    assert "cluster" in det021[0].message
    assert "node" in det021[0].message


def test_conflicting_ownership_joins_to_unknown_and_stays_silent():
    # One attribute assigned from two domains is ambiguous ("?"), and
    # the rules never fire on ambiguity.
    src = (
        "class Holder:\n"
        "    def __init__(self, a, b, flag):\n"
        "        # repro: owner[node] first source\n"
        "        self.x = a\n"
        "        # repro: owner[cluster] second source\n"
        "        self.x = b\n"
        "    def poke(self):\n"
        "        self.x.items.append(1)\n"
    )
    # Declared pragmas win joins individually; last write wins is NOT
    # assumed — behaviorally this must simply not crash and not fire
    # DET018 (the read side needs an unambiguous cluster owner).
    findings = lint_source(src, "kernel/holder.py")
    assert all(f.rule in ISOLATION_RULES for f in findings)


# -- parallel fan-out includes the isolation pass ----------------------------

def test_isolation_pass_parallel_matches_serial():
    serial = lint_paths_program([FIXTURES],
                                rules=set(ISOLATION_RULES), jobs=1)
    parallel = lint_paths_program([FIXTURES],
                                  rules=set(ISOLATION_RULES), jobs=2)
    assert serial == parallel
    assert {f.rule for f in serial} == set(ISOLATION_RULES)


# -- the shard manifest ------------------------------------------------------

@pytest.fixture(scope="module")
def manifest(real_program):
    return build_manifest(real_program)


def test_manifest_has_replicated_node_domains(manifest):
    names = [d["name"] for d in manifest["domains"]]
    node_shards = [d for d in manifest["domains"]
                   if d["kind"] == "node"]
    assert len(node_shards) >= 2
    assert all(d["replicated"] for d in node_shards)
    # Isomorphic shards: same class set, private instances.
    assert node_shards[0]["classes"] == node_shards[1]["classes"]
    assert "cluster" in names and "sim-kernel" in names


def test_manifest_domains_carry_real_classes(manifest):
    by_name = {d["name"]: d for d in manifest["domains"]}
    assert "repro.cluster.node.StorageNode" in by_name["node(0)"]["classes"]
    assert "repro.cluster.cluster.Cluster" in by_name["cluster"]["classes"]
    assert "repro.sim.core.Simulator" in by_name["sim-kernel"]["classes"]


def test_manifest_edges_are_fully_annotated(manifest):
    assert manifest["edges"], "manifest must sanction at least one edge"
    for edge in manifest["edges"]:
        assert edge["boundary"], edge
        assert edge["min_latency_us"] >= 0.0, edge
        assert edge["why"], edge


def test_manifest_lookahead_matches_network_hop(manifest):
    # Network(hop_us=300.0) is the paper's datacenter hop; the manifest
    # reads the default straight out of the AST.
    assert manifest["lookahead_us"] == 300.0
    rpc = [e for e in manifest["edges"]
           if e["boundary"].startswith("Network.send")]
    assert rpc and all(e["min_latency_us"] == 300.0 for e in rpc)
    slo = [e for e in manifest["edges"] if "SLO control" in e["boundary"]]
    assert slo and slo[0]["min_latency_us"] == 250000.0


def test_manifest_records_frozen_shared_state(manifest):
    frozen = [f["class"] for f in manifest["frozen_shared"]]
    assert "repro.engines.kv.KeySpace" in frozen


# -- the CLI -----------------------------------------------------------------

def test_cli_isolation_clean_tree_and_manifest(tmp_path, capsys):
    out_path = tmp_path / "shards.json"
    code = analysis_main(["isolation", str(SRC),
                          "--manifest", str(out_path)])
    assert code == 0
    capsys.readouterr()
    manifest = json.loads(out_path.read_text())
    assert manifest["version"] == 1
    assert len([d for d in manifest["domains"]
                if d["kind"] == "node"]) >= 2


def test_cli_isolation_finds_planted_fixture(capsys):
    code = analysis_main(["isolation",
                          str(FIXTURES / "cluster" / "det017_bad.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "DET017" in out
    assert "DET0" not in out.replace("DET017", "")  # only isolation rules


def test_cli_isolation_budget_exceeded(tmp_path, capsys):
    # An impossible budget must trip exit code 3 (the CI guard).
    code = analysis_main(["isolation",
                          str(FIXTURES / "kernel" / "det019_ok.py"),
                          "--max-seconds", "0.0"])
    assert code == 3
    capsys.readouterr()


def test_cli_isolation_baseline_ratchet(tmp_path, capsys):
    baseline = tmp_path / "isolation-baseline.json"
    bad = str(FIXTURES / "cluster" / "det017_bad.py")
    assert analysis_main(["isolation", bad, "--write-baseline",
                          str(baseline)]) == 0
    capsys.readouterr()
    assert analysis_main(["isolation", bad,
                          "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # A new leak in another file still fails against the old baseline.
    worse = str(FIXTURES / "cluster" / "det020_bad.py")
    assert analysis_main(["isolation", bad, worse,
                          "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_raw_check_isolation_reports_fixture_rules():
    program = [ProgramFile.load(p) for p in iter_python_files(
        [FIXTURES / "cluster", FIXTURES / "kernel"])]
    raw = check_isolation(program)
    rules = {r[0] for r in raw}
    assert {"DET017", "DET018", "DET019", "DET020", "DET021"} <= rules
