"""Tests of the % latency reduction metric."""

import pytest

from repro.metrics.latency import LatencyRecorder
from repro.metrics.reduction import latency_reduction, reduction_curve


def _recorder(values_ms):
    rec = LatencyRecorder()
    for v in values_ms:
        rec.add(v * 1000.0)
    return rec


def test_reduction_positive_when_mitt_faster():
    other = _recorder([10.0] * 100)
    mitt = _recorder([8.0] * 100)
    red = latency_reduction(other, mitt)
    assert red["avg"] == pytest.approx(20.0)
    assert red["p95"] == pytest.approx(20.0)


def test_reduction_negative_when_mitt_slower():
    other = _recorder([10.0] * 100)
    mitt = _recorder([11.0] * 100)
    assert latency_reduction(other, mitt)["p90"] == pytest.approx(-10.0)


def test_reduction_formula_matches_paper_footnote():
    # (T_other - T_mitt) / T_other
    other = _recorder(list(range(1, 101)))
    mitt = _recorder([v / 2 for v in range(1, 101)])
    red = latency_reduction(other, mitt, percentiles=(50,))
    assert red["p50"] == pytest.approx(50.0)


def test_reduction_curve_layout():
    other = _recorder(list(range(1, 101)))
    mitt = _recorder(list(range(1, 101)))
    curve = reduction_curve(other, mitt, lo=40, hi=99, step=10)
    assert [p for p, _ in curve] == [40, 50, 60, 70, 80, 90]
    assert all(r == pytest.approx(0.0) for _, r in curve)
