"""Tests of the one-hop network model."""

from repro.cluster import Network


def test_hop_latency_around_mean(sim):
    net = Network(sim, hop_us=300.0, jitter_us=15.0)
    samples = [net.hop_latency() for _ in range(500)]
    mean = sum(samples) / len(samples)
    assert 280 < mean < 320
    assert all(s >= 1.0 for s in samples)


def test_hop_event_advances_clock(sim):
    net = Network(sim, hop_us=300.0, jitter_us=0.0)
    ev = net.hop()
    sim.run()
    assert ev.triggered
    assert sim.now == 300.0


def test_heavy_tail_component(sim):
    net = Network(sim, hop_us=300.0, jitter_us=0.0, tail_prob=1.0,
                  tail_extra_us=5000.0)
    samples = [net.hop_latency() for _ in range(200)]
    assert max(samples) > 1000.0


def test_deterministic_across_seeds():
    from repro.sim import Simulator
    a = Network(Simulator(seed=1)).hop_latency()
    b = Network(Simulator(seed=1)).hop_latency()
    assert a == b
