"""Tests of the client-side tail-tolerance strategies."""

import pytest

from repro._units import MS, SEC
from repro.cluster import Cluster, Network
from repro.cluster.strategies import STRATEGIES, MittosStrategy
from repro.errors import EIO, EBusy, is_ebusy
from repro.experiments.common import build_disk_cluster, make_strategy


def _noisy_primary(env, key):
    """Make the key's primary node severely busy."""
    primary = env.cluster.replicas_for(key)[0]
    injector = env.injectors[primary.node_id]
    injector.busy_window(3 * SEC, concurrency=5)
    return primary


def _get(sim, strategy, key):
    ev = strategy.get(key)
    sim.run_until(ev, limit=60 * SEC)
    return ev


def test_registry_contains_all_nine():
    assert set(STRATEGIES) == {"base", "appto", "clone", "hedged", "tied",
                               "snitch", "c3", "mittos", "adaptive"}


def test_base_waits_out_the_noise(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("base", env.cluster)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO
    assert sim.now - start > 20 * MS  # stalled behind the busy disk


def test_base_times_out_with_error(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("base", env.cluster)
    strategy.timeout_us = 15 * MS
    ev = _get(sim, strategy, 1)
    assert ev.value is EIO
    assert strategy.timeouts == 1


def test_appto_retries_to_another_replica(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("appto", env.cluster, deadline_us=15 * MS)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO
    assert strategy.retries >= 1
    # latency ~ timeout + clean read, far below the noise duration
    assert sim.now - start < 60 * MS


def test_clone_takes_faster_replica(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("clone", env.cluster)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO
    assert strategy.duplicates == 1


def test_hedged_duplicates_only_after_delay(sim):
    env = build_disk_cluster(sim, 6)
    strategy = make_strategy("hedged", env.cluster, deadline_us=50 * MS)
    ev = _get(sim, strategy, 1)  # quiet cluster: no hedge needed
    assert strategy.duplicates == 0
    _noisy_primary(env, 2)
    ev = _get(sim, strategy, 2)
    assert strategy.duplicates == 1
    assert ev.value is not EIO


def test_mittos_instant_failover(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("mittos", env.cluster, deadline_us=15 * MS)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert not is_ebusy(ev.value) and ev.value is not EIO
    assert strategy.failovers >= 1
    # No waiting: roughly one extra hop + a clean read.
    assert sim.now - start < 25 * MS


def test_mittos_third_try_disables_deadline(sim):
    env = build_disk_cluster(sim, 3)  # all three replicas = all nodes
    for injector in env.injectors:
        injector.busy_window(3 * SEC, concurrency=5)
    strategy = make_strategy("mittos", env.cluster, deadline_us=10 * MS)
    ev = _get(sim, strategy, 1)
    assert not is_ebusy(ev.value) and ev.value is not EIO
    assert strategy.all_busy == 1


def test_mittos_wait_hint_picks_least_busy(sim):
    env = build_disk_cluster(sim, 3)
    for injector in env.injectors:
        injector.busy_window(3 * SEC, concurrency=5)
    strategy = make_strategy("mittos", env.cluster, deadline_us=10 * MS,
                             use_wait_hint=True)
    ev = _get(sim, strategy, 1)
    assert not is_ebusy(ev.value) and ev.value is not EIO
    assert strategy.all_busy == 1


def test_tied_cancels_loser(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("tied", env.cluster)
    strategy.tie_delay_us = 5 * MS
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO and not is_ebusy(ev.value)
    assert strategy.duplicates == 1


def test_snitch_learns_to_avoid_stable_noise(sim):
    env = build_disk_cluster(sim, 3)
    env.injectors[0].busy_window(30 * SEC, concurrency=5)
    strategy = make_strategy("snitch", env.cluster)

    def client():
        for k in range(60):
            yield strategy.get(k)

    proc = sim.process(client())
    sim.run_until(proc, limit=40 * SEC)
    # After learning, requests whose primary is node 0 get redirected:
    ewma = strategy._ewma
    assert ewma  # it observed latencies
    busy_score = ewma.get(0)
    other = [v for nid, v in ewma.items() if nid != 0]
    assert busy_score is None or not other or busy_score >= min(other)


def test_c3_uses_queue_feedback(sim):
    env = build_disk_cluster(sim, 3)
    env.injectors[0].busy_window(30 * SEC, concurrency=5)
    strategy = make_strategy("c3", env.cluster)

    def client():
        for k in range(60):
            yield strategy.get(k)

    proc = sim.process(client())
    sim.run_until(proc, limit=40 * SEC)
    assert strategy._queue  # queue estimates were collected


def test_replication_below_one_is_rejected(sim):
    with pytest.raises(ValueError):
        Cluster(sim, [], Network(sim), replication=0)


def test_race_timer_is_cancelled_when_the_event_wins(sim):
    """Regression: the loser's timeout used to stay live in the heap, so a
    quiet get with base's 30 s timeout left a 30 s timer behind."""
    env = build_disk_cluster(sim, 6)
    strategy = make_strategy("base", env.cluster)  # default 30 s timeout
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO
    pending = [time for time, _tie, _seq, h in sim._heap if not h.cancelled]
    assert all(t < 1 * SEC for t in pending), pending


def test_ebusy_response_carries_predicted_wait(sim):
    """Satellite of §8.1: the wait hint rides the EBUSY response itself."""
    env = build_disk_cluster(sim, 3)
    primary = _noisy_primary(env, 1)
    ev = primary.get(1, deadline=5 * MS)
    sim.run_until(ev, limit=1 * SEC)
    assert is_ebusy(ev.value)
    assert ev.value.predicted_wait is not None
    assert ev.value.predicted_wait > 5 * MS  # the reject reason, per request


# -- wait-hint interleaving (the old shared-hint race) -----------------------

class _ScriptedNode:
    """A replica answering deadline gets from a fixed per-arrival script."""

    def __init__(self, sim, node_id, script):
        self.sim = sim
        self.node_id = node_id
        self.script = list(script)  # (delay_us, result) in arrival order
        self.final_gets = 0        # deadline-None gets routed here
        self.up = True
        self.epoch = 0

    def get(self, key, deadline=None):
        if deadline is None:
            self.final_gets += 1
            return self.sim.timeout(200.0, ("data", self.node_id))
        delay, result = self.script.pop(0)
        return self.sim.timeout(delay, result)


class _ScriptedCluster:
    """Minimal cluster: every key lives on all nodes, in order."""

    def __init__(self, sim, nodes):
        self.sim = sim
        self.nodes = nodes
        self.network = Network(sim, hop_us=50.0, jitter_us=0.0)
        self.health = None
        self.default_rpc_timeout_us = None
        self.default_op_budget_us = None
        self.default_max_attempts = None

    def replicas_for(self, key):
        return list(self.nodes)


def test_wait_hints_are_per_request_under_interleaving(sim):
    """Two clients interleave their EBUSY failover rounds; each must route
    its last try by its *own* hints.  With the old shared
    ``predictor.last_rejected_wait`` hint, client A read whatever value
    client B's rejection stored last."""
    busy = 100 * MS
    idle = 5 * MS
    # Arrival order per node is client A then client B (A starts first and
    # both follow the same fixed-latency sequence).
    nodes = [
        _ScriptedNode(sim, 0, [(200.0, EBusy(busy)), (200.0, EBusy(idle))]),
        _ScriptedNode(sim, 1, [(200.0, EBusy(idle)), (200.0, EBusy(busy))]),
        _ScriptedNode(sim, 2, [(200.0, EBusy(busy)), (200.0, EBusy(busy))]),
    ]
    cluster = _ScriptedCluster(sim, nodes)
    strategy = MittosStrategy(cluster, deadline_us=10 * MS,
                              use_wait_hint=True)

    def client(offset_us):
        yield offset_us
        result = yield strategy.get(1)
        return result

    proc_a = sim.process(client(0.0))
    proc_b = sim.process(client(100.0))
    sim.run_until(sim.all_of([proc_a, proc_b]), limit=1 * SEC)
    # A's hints say node 1 is least busy; B's say node 0.
    assert proc_a.value == ("data", 1)
    assert proc_b.value == ("data", 0)
    assert nodes[0].final_gets == 1
    assert nodes[1].final_gets == 1
    assert nodes[2].final_gets == 0
    assert strategy.all_busy == 2
