"""Tests of the client-side tail-tolerance strategies."""

from repro._units import MS, SEC
from repro.cluster.strategies import STRATEGIES
from repro.errors import EBUSY, EIO
from repro.experiments.common import build_disk_cluster, make_strategy


def _noisy_primary(env, key):
    """Make the key's primary node severely busy."""
    primary = env.cluster.replicas_for(key)[0]
    injector = env.injectors[primary.node_id]
    injector.busy_window(3 * SEC, concurrency=5)
    return primary


def _get(sim, strategy, key):
    ev = strategy.get(key)
    sim.run_until(ev, limit=60 * SEC)
    return ev


def test_registry_contains_all_eight():
    assert set(STRATEGIES) == {"base", "appto", "clone", "hedged", "tied",
                               "snitch", "c3", "mittos"}


def test_base_waits_out_the_noise(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("base", env.cluster)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO
    assert sim.now - start > 20 * MS  # stalled behind the busy disk


def test_base_times_out_with_error(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("base", env.cluster)
    strategy.timeout_us = 15 * MS
    ev = _get(sim, strategy, 1)
    assert ev.value is EIO
    assert strategy.timeouts == 1


def test_appto_retries_to_another_replica(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("appto", env.cluster, deadline_us=15 * MS)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO
    assert strategy.retries >= 1
    # latency ~ timeout + clean read, far below the noise duration
    assert sim.now - start < 60 * MS


def test_clone_takes_faster_replica(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("clone", env.cluster)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO
    assert strategy.duplicates == 1


def test_hedged_duplicates_only_after_delay(sim):
    env = build_disk_cluster(sim, 6)
    strategy = make_strategy("hedged", env.cluster, deadline_us=50 * MS)
    ev = _get(sim, strategy, 1)  # quiet cluster: no hedge needed
    assert strategy.duplicates == 0
    _noisy_primary(env, 2)
    ev = _get(sim, strategy, 2)
    assert strategy.duplicates == 1
    assert ev.value is not EIO


def test_mittos_instant_failover(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("mittos", env.cluster, deadline_us=15 * MS)
    start = sim.now
    ev = _get(sim, strategy, 1)
    assert ev.value is not EBUSY and ev.value is not EIO
    assert strategy.failovers >= 1
    # No waiting: roughly one extra hop + a clean read.
    assert sim.now - start < 25 * MS


def test_mittos_third_try_disables_deadline(sim):
    env = build_disk_cluster(sim, 3)  # all three replicas = all nodes
    for injector in env.injectors:
        injector.busy_window(3 * SEC, concurrency=5)
    strategy = make_strategy("mittos", env.cluster, deadline_us=10 * MS)
    ev = _get(sim, strategy, 1)
    assert ev.value is not EBUSY and ev.value is not EIO
    assert strategy.all_busy == 1


def test_mittos_wait_hint_picks_least_busy(sim):
    env = build_disk_cluster(sim, 3)
    for injector in env.injectors:
        injector.busy_window(3 * SEC, concurrency=5)
    strategy = make_strategy("mittos", env.cluster, deadline_us=10 * MS,
                             use_wait_hint=True)
    ev = _get(sim, strategy, 1)
    assert ev.value is not EBUSY and ev.value is not EIO
    assert strategy.all_busy == 1


def test_tied_cancels_loser(sim):
    env = build_disk_cluster(sim, 6)
    _noisy_primary(env, 1)
    strategy = make_strategy("tied", env.cluster)
    strategy.tie_delay_us = 5 * MS
    ev = _get(sim, strategy, 1)
    assert ev.value is not EIO and ev.value is not EBUSY
    assert strategy.duplicates == 1


def test_snitch_learns_to_avoid_stable_noise(sim):
    env = build_disk_cluster(sim, 3)
    env.injectors[0].busy_window(30 * SEC, concurrency=5)
    strategy = make_strategy("snitch", env.cluster)

    def client():
        for k in range(60):
            yield strategy.get(k)

    proc = sim.process(client())
    sim.run_until(proc, limit=40 * SEC)
    # After learning, requests whose primary is node 0 get redirected:
    ewma = strategy._ewma
    assert ewma  # it observed latencies
    busy_score = ewma.get(0)
    other = [v for nid, v in ewma.items() if nid != 0]
    assert busy_score is None or not other or busy_score >= min(other)


def test_c3_uses_queue_feedback(sim):
    env = build_disk_cluster(sim, 3)
    env.injectors[0].busy_window(30 * SEC, concurrency=5)
    strategy = make_strategy("c3", env.cluster)

    def client():
        for k in range(60):
            yield strategy.get(k)

    proc = sim.process(client())
    sim.run_until(proc, limit=40 * SEC)
    assert strategy._queue  # queue estimates were collected
