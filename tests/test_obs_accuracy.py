"""Tests of the prediction-accuracy observatory (obs/accuracy)."""

from repro.obs.accuracy import (CELLS, FALSE_ACCEPT, FALSE_REJECT,
                                TRUE_ACCEPT, TRUE_REJECT, AccuracyJoiner)
from repro.obs.events import IO_CANCEL, IO_COMPLETE, VERDICT, TraceEvent

DEADLINE = 100.0


def verdict(t, req, accept, deadline=DEADLINE, wait=30.0, service=20.0,
            shadow=True, probe=False, dev="n0"):
    return TraceEvent(t, VERDICT, {
        "req": req, "op": "read", "offset": 0, "size": 4096, "pid": 1,
        "predictor": "mittcfq", "accept": accept, "probe": probe,
        "shadow": shadow, "deadline": deadline, "predicted_wait": wait,
        "predicted_service": service, "device": dev, "dev_kind": "disk",
        "sched": "cfq"})


def complete(t, req, dev="n0"):
    return TraceEvent(t, IO_COMPLETE, {"req": req, "dev": dev,
                                       "latency": t})


def cancel(t, req, dev="n0"):
    return TraceEvent(t, IO_CANCEL, {"req": req, "dev": dev})


# -- the 2x2 classification --------------------------------------------------
def test_planted_confusion_counts_are_exact():
    """Two planted decisions per cell; classification is actual vs SLO."""
    events = [
        # true accepts: admitted, completed within deadline.
        verdict(0.0, 1, True), complete(50.0, 1),
        verdict(0.0, 2, True), complete(99.0, 2),
        # false accepts: admitted, completed past deadline.
        verdict(0.0, 3, True), complete(101.0, 3),
        verdict(0.0, 4, True), complete(400.0, 4),
        # true rejects (shadow: the IO still ran, and indeed missed).
        verdict(0.0, 5, False), complete(250.0, 5),
        verdict(0.0, 6, False), complete(150.0, 6),
        # false rejects (shadow: the IO ran, and would have fit).
        verdict(0.0, 7, False), complete(40.0, 7),
        verdict(0.0, 8, False), complete(100.0, 8),  # boundary: <= fits
    ]
    joiner = AccuracyJoiner.from_events(events)
    assert joiner.graded == 8
    assert joiner.confusion() == {TRUE_ACCEPT: 2, FALSE_ACCEPT: 2,
                                  TRUE_REJECT: 2, FALSE_REJECT: 2}
    assert joiner.unresolved == 0
    assert joiner.unmatched_completions == 0


def test_signed_error_is_actual_minus_predicted():
    events = [verdict(10.0, 1, True, wait=30.0, service=20.0),
              complete(90.0, 1)]
    joiner = AccuracyJoiner.from_events(events)
    (record,) = joiner.records
    assert record.predicted == 50.0
    assert record.actual == 80.0  # verdict at t=10, completion at t=90
    assert record.error == 30.0   # optimistic: actual exceeded predicted
    assert record.group == ("disk", "cfq", "n0")


# -- joiner edge cases -------------------------------------------------------
def test_completion_without_verdict_is_counted_not_graded():
    joiner = AccuracyJoiner.from_events([complete(10.0, 99)])
    assert joiner.graded == 0
    assert joiner.unmatched_completions == 1


def test_cancel_after_verdict_is_a_late_cancel():
    events = [verdict(0.0, 1, True), cancel(5.0, 1)]
    joiner = AccuracyJoiner.from_events(events)
    assert joiner.graded == 0
    assert joiner.late_cancels == 1
    # The cancelled request's id is free again: no stale pending state.
    assert joiner.unresolved == 0


def test_duplicate_req_id_across_simulator_restart():
    """A fresh verdict for a still-pending id means request numbering
    restarted (one simulator per strategy line); the stale entry must be
    flushed, not mis-joined against the new run's completion."""
    events = [
        verdict(0.0, 1, True),    # run A: never resolves
        verdict(50.0, 1, True),   # run B reuses req id 1
        complete(80.0, 1),        # resolves run B's verdict only
    ]
    joiner = AccuracyJoiner.from_events(events)
    assert joiner.graded == 1
    assert joiner.unresolved == 1
    (record,) = joiner.records
    assert record.actual == 30.0  # joined to the *second* verdict


def test_probe_verdicts_are_counted_separately():
    events = [verdict(0.0, 1, True, probe=True)]
    joiner = AccuracyJoiner.from_events(events)
    assert joiner.probes == 1
    assert joiner.graded == 0
    assert joiner.unresolved == 0  # probe never becomes pending


def test_enforced_reject_is_ungradeable():
    """Without shadow mode a rejected IO never runs: no actual wait."""
    joiner = AccuracyJoiner.from_events([verdict(0.0, 1, False,
                                                 shadow=False)])
    assert joiner.unenforced_rejects == 1
    assert joiner.graded == 0


def test_finalize_flushes_pending_verdicts():
    joiner = AccuracyJoiner().consume([verdict(0.0, 1, True)])
    assert joiner.unresolved == 0
    joiner.finalize()
    assert joiner.unresolved == 1


def test_verdict_without_deadline_is_ignored():
    events = [verdict(0.0, 1, True, deadline=None), complete(50.0, 1)]
    joiner = AccuracyJoiner.from_events(events)
    assert joiner.graded == 0
    assert joiner.unmatched_completions == 1


# -- aggregation + rendering -------------------------------------------------
def test_error_rows_group_by_device_identity():
    events = [
        verdict(0.0, 1, True, dev="n0"), complete(60.0, 1, dev="n0"),
        verdict(0.0, 2, True, dev="n1"), complete(70.0, 2, dev="n1"),
        verdict(0.0, 3, True, dev="n1"), complete(90.0, 3, dev="n1"),
    ]
    rows = AccuracyJoiner.from_events(events).error_rows()
    assert [(group, n) for group, n, *_ in rows] == \
        [(("disk", "cfq", "n0"), 1), (("disk", "cfq", "n1"), 2)]
    group, n, p50, p95, p99, mae = rows[1]
    assert p50 == 30.0  # errors 20 and 40, predicted 50 each
    assert mae == 30.0


def test_render_has_error_table_and_confusion_matrix():
    events = [
        verdict(0.0, 1, True), complete(50.0, 1),
        verdict(0.0, 2, False), complete(40.0, 2),
    ]
    out = AccuracyJoiner.from_events(events).render()
    assert "Prediction error" in out
    assert "disk/cfq/n0" in out
    assert "Admission confusion (2 graded decisions" in out
    assert "false-reject 1" in out
    assert "probes=0" in out


def test_render_without_gradeable_decisions():
    out = AccuracyJoiner.from_events([]).render()
    assert "no gradeable admission decisions" in out


def test_cells_constant_covers_all_outcomes():
    assert set(CELLS) == {TRUE_ACCEPT, FALSE_ACCEPT, TRUE_REJECT,
                          FALSE_REJECT}


# -- CLI ----------------------------------------------------------------------
def test_accuracy_cli_same_seed_is_byte_identical(tmp_path, capsys):
    """The acceptance gate: two same-seed runs print identical reports
    and write identical metrics snapshots."""
    from repro.obs.__main__ import main

    snaps, outputs = [], []
    for name in ("a.json", "b.json"):
        snap = tmp_path / name
        assert main(["accuracy", "--scenario", "fig3",
                     "--snapshot", str(snap)]) == 0
        outputs.append(capsys.readouterr().out.replace(str(snap), "SNAP"))
        snaps.append(snap.read_bytes())
    assert outputs[0] == outputs[1]
    assert snaps[0] == snaps[1]
    out = outputs[0]
    assert "Admission confusion" in out
    assert "err_p95us" in out
    assert "disk/cfq/n0" in out


def test_accuracy_cli_unknown_scenario(capsys):
    from repro.obs.__main__ import main
    assert main(["accuracy", "--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
