"""Tests of the fault plane: spec validation, determinism, injection."""

import pytest

from repro._units import MS, SEC
from repro.analysis.replay import verify_replay
from repro.errors import EIO
from repro.experiments import faultsweep
from repro.experiments.common import build_disk_cluster, make_strategy
from repro.faults import (CrashWindow, FailSlow, FaultPlane, FaultSpec,
                          MessageLoss, Partition, ReadErrors)
from repro.metrics import AvailabilityStats
from repro.sim import Simulator


# -- spec validation ---------------------------------------------------------

@pytest.mark.parametrize("spec", [
    FaultSpec(message_loss=(MessageLoss(rate=1.5),)),
    FaultSpec(read_errors=(ReadErrors(rate=-0.1),)),
    FaultSpec(false_negative_rate=2.0),
    FaultSpec(crashes=(CrashWindow(node=0, start_us=-1.0),)),
    FaultSpec(fail_slow=(FailSlow(node=0, start_us=0.0, duration_us=-5.0),)),
    FaultSpec(rpc_timeout_us=0.0),
])
def test_spec_validation_rejects_bad_values(spec):
    with pytest.raises(ValueError):
        spec.validate()


def test_empty_spec_is_valid_and_plane_armable(sim):
    env = build_disk_cluster(sim, 3)
    plane = FaultPlane(sim).arm(env.cluster)
    assert plane.schedule() == []
    assert not plane.drop_message(-1, 0)
    assert not plane.read_error(0)


# -- determinism -------------------------------------------------------------

SPEC = FaultSpec(
    crashes=(CrashWindow(node=0, start_us=10 * MS, duration_us=20 * MS),),
    fail_slow=(FailSlow(node=1, start_us=5 * MS, duration_us=30 * MS,
                        cpu_factor=4.0, device_factor=3.0),),
    message_loss=(MessageLoss(rate=0.3),),
    read_errors=(ReadErrors(rate=0.1),),
    false_positive_rate=0.1,
    rpc_timeout_us=40 * MS,
    op_budget_us=500 * MS,
    max_attempts=4,
)


def test_schedule_is_deterministic_and_sorted():
    schedules = []
    for _ in range(2):
        plane = FaultPlane(Simulator(seed=3), SPEC)
        schedules.append(plane.schedule())
    assert schedules[0] == schedules[1]
    times = [t for t, _, _ in schedules[0]]
    assert times == sorted(times)
    actions = {(a, n) for _, a, n in schedules[0]}
    assert ("crash", 0) in actions and ("restart", 0) in actions
    assert ("fail_slow_on", 1) in actions and ("fail_slow_off", 1) in actions


def _run_faulted_workload(seed):
    """A small faulted mittos run; returns the plane's injection counters."""
    sim = Simulator(seed=seed)
    plane = FaultPlane(sim, SPEC)
    env = build_disk_cluster(sim, 4,
                             fault_injector=plane.decision_injector)
    plane.arm(env.cluster)
    strategy = make_strategy("mittos", env.cluster, deadline_us=20 * MS)

    def client(offset_us):
        yield offset_us
        for key in range(10):
            yield strategy.get(key)

    procs = [sim.process(client(i * 500.0)) for i in range(2)]
    sim.run_until(sim.all_of(procs), limit=60 * SEC)
    return plane.counters()


def test_same_seed_same_injection_counters():
    first = _run_faulted_workload(seed=5)
    second = _run_faulted_workload(seed=5)
    assert first == second
    assert first["dropped_messages"] > 0  # faults actually fired


def test_faulted_scenario_replays_byte_identically():
    report = verify_replay(faultsweep.replay_scenario, seed=11)
    assert report.ok, report.render()


# -- scheduled transitions ---------------------------------------------------

def test_crash_window_downs_then_restarts_the_node(sim):
    env = build_disk_cluster(sim, 3)
    spec = FaultSpec(crashes=(CrashWindow(node=0, start_us=10 * MS,
                                          duration_us=20 * MS),))
    FaultPlane(sim, spec).arm(env.cluster)
    node = env.nodes[0]
    sim.run(until=15 * MS)
    assert not node.up and node.crashes == 1 and node.epoch == 1
    sim.run(until=40 * MS)
    assert node.up and node.epoch == 1  # restart keeps the bumped epoch


def test_fail_slow_sets_and_clears_the_factors(sim):
    env = build_disk_cluster(sim, 3)
    spec = FaultSpec(fail_slow=(FailSlow(node=1, start_us=0.0,
                                         duration_us=10 * MS,
                                         cpu_factor=4.0,
                                         device_factor=3.0),))
    FaultPlane(sim, spec).arm(env.cluster)
    node = env.nodes[1]
    sim.run(until=5 * MS)
    assert node.cpu_slow_factor == 4.0
    assert node.os.device.latency_scale == 3.0
    sim.run(until=20 * MS)
    assert node.cpu_slow_factor == 1.0
    assert node.os.device.latency_scale == 1.0


def test_arm_installs_client_resilience_defaults(sim):
    env = build_disk_cluster(sim, 3)
    FaultPlane(sim, SPEC).arm(env.cluster)
    cluster = env.cluster
    assert cluster.default_rpc_timeout_us == SPEC.rpc_timeout_us
    assert cluster.default_op_budget_us == SPEC.op_budget_us
    assert cluster.default_max_attempts == SPEC.max_attempts
    assert cluster.health is not None


# -- probabilistic members ---------------------------------------------------

def test_partition_drops_both_directions_only_for_the_pair(sim):
    env = build_disk_cluster(sim, 3)
    spec = FaultSpec(partitions=(Partition(a=-1, b=0, start_us=0.0),))
    plane = FaultPlane(sim, spec).arm(env.cluster)
    assert plane.drop_message(-1, 0)
    assert plane.drop_message(0, -1)
    assert not plane.drop_message(-1, 1)
    assert plane.dropped_messages == 2


def test_message_loss_src_filter_is_directional(sim):
    env = build_disk_cluster(sim, 3)
    spec = FaultSpec(message_loss=(MessageLoss(rate=1.0, src=-1),))
    plane = FaultPlane(sim, spec).arm(env.cluster)
    assert plane.drop_message(-1, 2)      # client -> node matches src
    assert not plane.drop_message(2, -1)  # replies still flow


def test_message_loss_window_expires(sim):
    env = build_disk_cluster(sim, 3)
    spec = FaultSpec(message_loss=(MessageLoss(rate=1.0, start_us=0.0,
                                               duration_us=10 * MS),))
    plane = FaultPlane(sim, spec).arm(env.cluster)
    assert plane.drop_message(-1, 0)
    sim.run(until=20 * MS)
    assert not plane.drop_message(-1, 0)


def test_latent_read_error_surfaces_as_eio(sim):
    env = build_disk_cluster(sim, 3)
    spec = FaultSpec(read_errors=(ReadErrors(rate=1.0, node=0),))
    FaultPlane(sim, spec).arm(env.cluster)
    node = env.nodes[0]
    ev = node.get(1)
    sim.run_until(ev, limit=1 * SEC)
    assert ev.value is EIO
    assert node.read_errors == 1
    other = env.nodes[1].get(1)  # the rule is scoped to node 0
    sim.run_until(other, limit=1 * SEC)
    assert other.value is not EIO


# -- availability accounting -------------------------------------------------

def test_availability_stats_math():
    stats = AvailabilityStats("line")
    assert stats.availability == 1.0  # idle line counts as available
    for success in (True, True, True, False):
        stats.record(success)
    assert stats.total == 4
    assert stats.availability == 0.75
    assert stats.error_rate == 0.25


def test_availability_stats_from_recorder():
    from repro.metrics import LatencyRecorder
    rec = LatencyRecorder("line")
    for latency in (100.0, 200.0, 300.0):
        rec.add(latency)
    rec.count("eio", 1)
    stats = AvailabilityStats.from_recorder(rec)
    assert stats.ok == 2 and stats.errors == 1
    assert stats.availability == pytest.approx(2 / 3)
