"""Smoke tests: every registered experiment runs and returns tables.

These run tiny configurations (the experiments' quick mode is already
sized for CI-scale runs; here we only sanity-check structure for the
cheapest ones and the registry itself).
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig12", "fig13", "allinone", "writes",
        "faultsweep", "slosweep"}


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        get_experiment("fig99")


@pytest.mark.parametrize("exp_id", ["table1", "writes", "fig13"])
def test_cheap_experiments_render(exp_id):
    result = get_experiment(exp_id)(quick=True, seed=3)
    out = result.render()
    assert exp_id in out
    assert result.sections, "no tables produced"
    for heading, headers, rows in result.sections:
        assert headers
        assert all(len(row) == len(headers) for row in rows)


def test_table1_reproduces_the_paper_findings():
    result = get_experiment("table1")(quick=True, seed=3)
    rows = result.data["rows"]
    # Nobody's default timeout fires on 1 s bursts:
    assert all(row[6] == 0 for row in rows)
    # The three no-failover systems return read errors at 100 ms TO:
    errors = {row[0]: row[7] for row in rows}
    for system in ("Couchbase", "MongoDB", "Riak"):
        assert errors[system] > 0
    for system in ("Cassandra", "HBase", "Voldemort"):
        assert errors[system] == 0


def test_writes_experiment_shows_flat_writes():
    result = get_experiment("writes")(quick=True, seed=3)
    nonoise = result.data["nonoise"]
    base = result.data["base"]
    assert abs(base.p(99) - nonoise.p(99)) < 0.5  # ms


def test_fig13_ebusy_correlates_with_noise():
    result = get_experiment("fig13")(quick=True, seed=3)
    timeline = result.data["timeline"]
    high = [e for _, o, e in timeline if o > 4]
    low = [e for _, o, e in timeline if o <= 1]
    if high and low:
        rate_high = sum(high) / len(high)
        rate_low = sum(low) / len(low)
        assert rate_high >= rate_low
