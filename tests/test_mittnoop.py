"""Tests of MittNoop disk prediction."""

import pytest

from repro._units import GB, KB, MS
from repro.devices import BlockRequest, Disk, DiskParams, IoOp
from repro.devices.disk_profile import profile_disk
from repro.kernel import NoopScheduler, OS
from repro.mittos import MittNoop


def _model():
    return profile_disk(lambda sim: Disk(sim, DiskParams(
        jitter_frac=0.0, hiccup_prob=0.0)))


MODEL = _model()


def _stack(sim, mode="precise", depth=4):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=depth))
    sched = NoopScheduler(sim, disk)
    predictor = MittNoop(MODEL, mode=mode)
    os_ = OS(sim, disk, sched, predictor=predictor)
    return os_, predictor


def _read(offset, size=4 * KB, pid=1):
    return BlockRequest(IoOp.READ, offset, size, pid=pid)


def test_mode_validated():
    with pytest.raises(ValueError):
        MittNoop(MODEL, mode="bogus")


def test_idle_estimate_is_service_only(sim):
    os_, predictor = _stack(sim)
    req = _read(100 * GB)
    wait, service = predictor._estimate(req)
    assert wait == 0.0
    assert service == pytest.approx(MODEL.service_time(0, req), rel=0.01)


def test_estimate_grows_with_queue(sim):
    os_, predictor = _stack(sim)
    waits = []
    for i in range(4):
        probe = _read(500 * GB)
        wait, _ = predictor._estimate(probe)
        waits.append(wait)
        os_.read(0, i * 50 * GB, 1024 * KB, pid=9)
    assert waits == sorted(waits)
    assert waits[-1] > 10 * MS


def test_admit_accepts_idle(sim):
    os_, predictor = _stack(sim)
    req = _read(10 * GB)
    verdict = predictor.admit(req, deadline=50 * MS)
    assert verdict.accept
    assert predictor.admitted == 1


def test_admit_rejects_busy(sim):
    os_, predictor = _stack(sim)
    for i in range(5):
        os_.read(0, i * 100 * GB, 2048 * KB, pid=9)
    req = _read(10 * GB)
    verdict = predictor.admit(req, deadline=10 * MS)
    assert not verdict.accept
    assert predictor.rejected == 1
    assert predictor.last_rejected_wait == verdict.predicted_wait


def test_rejection_test_includes_hop_allowance(sim):
    os_, predictor = _stack(sim)
    req = _read(10 * GB)
    _, service = predictor._estimate(req)
    hop = os_.params.failover_hop_us
    just_under = predictor.admit(_read(10 * GB), service - hop + 1.0)
    assert just_under.accept  # deadline + hop covers the service time


def test_prediction_attached_to_request(sim):
    os_, predictor = _stack(sim)
    req = _read(10 * GB)
    predictor.admit(req, deadline=50 * MS)
    assert req.predicted_wait is not None
    assert req.predicted_service is not None


def test_shadow_mode_never_rejects(sim):
    sim_disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    sched = NoopScheduler(sim, sim_disk)
    predictor = MittNoop(MODEL, shadow=True)
    OS(sim, sim_disk, sched, predictor=predictor)
    for i in range(5):
        sched.submit(_read(i * 100 * GB, 2048 * KB, pid=9))
    req = _read(10 * GB)
    verdict = predictor.admit(req, deadline=1 * MS)
    assert verdict.accept
    assert req.shadow_ebusy is True


def test_prediction_accuracy_on_quiet_disk(sim):
    """End-to-end: predicted total within ~10% of actual, serial IOs."""
    os_, predictor = _stack(sim)
    rng = sim.rng("acc")
    errors = []

    def loop():
        for _ in range(40):
            offset = rng.randrange(0, 900 * GB)
            req = _read(offset)
            verdict = predictor.admit(req, deadline=1_000 * MS)
            done = sim.event()
            req.add_callback(lambda r: done.try_succeed())
            req.submit_time = sim.now
            os_.scheduler.submit(req)
            yield done
            errors.append(abs(req.latency - verdict.predicted_total)
                          / req.latency)

    sim.process(loop())
    sim.run()
    assert sum(errors) / len(errors) < 0.1


def test_naive_mode_has_no_calibration():
    assert MittNoop(MODEL, mode="naive").calibrate is False
    assert MittNoop(MODEL, mode="precise").calibrate is True


def test_min_io_latency_from_model(sim):
    _, predictor = _stack(sim)
    assert predictor.min_io_latency(4 * KB) == pytest.approx(
        MODEL.min_read_latency(4 * KB))


def test_mirror_tracks_device_population(sim):
    os_, predictor = _stack(sim, depth=2)
    for i in range(2):
        os_.read(0, i * GB, 4 * KB, pid=9)
    assert len(predictor._in_device) == 2
    sim.run()
    assert len(predictor._in_device) == 0
