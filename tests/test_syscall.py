"""Tests of the OS facade: read/addrcheck/write."""

import pytest

from repro._units import GB, KB, MS
from repro.devices import Disk, DiskParams
from repro.devices.disk_profile import profile_disk
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, OS, PageCache
from repro.mittos import MittCfq
from tests.conftest import run_process


def _os(sim, cache_pages=None, mitt=False, depth=4):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=depth))
    sched = CfqScheduler(sim, disk)
    predictor = None
    if mitt:
        model = profile_disk(lambda s: Disk(s, DiskParams(
            jitter_frac=0.0, hiccup_prob=0.0)))
        predictor = MittCfq(model)
    cache = PageCache(sim, cache_pages) if cache_pages else None
    return OS(sim, disk, sched, cache=cache, predictor=predictor)


def test_plain_read_returns_result(sim):
    os_ = _os(sim)

    def gen():
        result = yield os_.read(0, 10 * GB, 4 * KB)
        return result

    result = run_process(sim, gen())
    assert not result.cache_hit
    assert result.latency > 1 * MS


def test_cache_hit_is_fast(sim):
    os_ = _os(sim, cache_pages=100)
    os_.cache.insert(0, 0, 4 * KB)

    def gen():
        result = yield os_.read(0, 0, 4 * KB)
        return result

    result = run_process(sim, gen())
    assert result.cache_hit
    assert result.latency < 100.0  # microseconds, not milliseconds


def test_cache_miss_populates_cache(sim):
    os_ = _os(sim, cache_pages=100)

    def gen():
        first = yield os_.read(0, 0, 4 * KB)
        second = yield os_.read(0, 0, 4 * KB)
        return first, second

    first, second = run_process(sim, gen())
    assert not first.cache_hit
    assert second.cache_hit


def test_deadline_read_gets_ebusy_when_busy(sim):
    os_ = _os(sim, mitt=True)

    def gen():
        # Saturate the disk: several large reads.
        for i in range(6):
            os_.read(0, i * 10 * GB, 4096 * KB, pid=9)
        result = yield os_.read(0, 500 * GB, 4 * KB, pid=1,
                                deadline=5 * MS)
        return result, sim.now

    result, at = run_process(sim, gen())
    assert is_ebusy(result)
    assert at < 1 * MS  # rejection is instant (microseconds)
    assert os_.ebusy_returned == 1


def test_deadline_read_accepted_when_idle(sim):
    os_ = _os(sim, mitt=True)

    def gen():
        result = yield os_.read(0, 10 * GB, 4 * KB, pid=1,
                                deadline=50 * MS)
        return result

    result = run_process(sim, gen())
    assert not is_ebusy(result)
    assert result.latency < 50 * MS


def test_addrcheck_resident_ok(sim):
    os_ = _os(sim, cache_pages=100, mitt=True)
    os_.cache.insert(0, 0, 4 * KB)
    assert os_.addrcheck(0, 0, 4 * KB, deadline=100.0) is True


def test_addrcheck_missing_with_tiny_deadline_is_ebusy(sim):
    os_ = _os(sim, cache_pages=100, mitt=True)
    verdict = os_.addrcheck(0, 0, 4 * KB, deadline=10.0)
    assert is_ebusy(verdict)
    # Fairness caveat: the OS swaps the page in anyway (§4.4).
    assert os_.cache.resident(0, 0, 4 * KB)


def test_addrcheck_missing_with_roomy_deadline_is_ok(sim):
    os_ = _os(sim, cache_pages=100, mitt=True)
    assert os_.addrcheck(0, 0, 4 * KB, deadline=100 * MS) is True


def test_addrcheck_without_cache_raises(sim):
    os_ = _os(sim)
    with pytest.raises(RuntimeError):
        os_.addrcheck(0, 0, 4 * KB, deadline=1.0)


def test_write_is_buffered_and_fast(sim):
    os_ = _os(sim)

    def gen():
        start = sim.now
        yield os_.write(0, 0, 1 * KB)
        return sim.now - start

    latency = run_process(sim, gen())
    assert latency < 100.0


def test_writes_flush_in_background(sim):
    os_ = _os(sim)

    def gen():
        for i in range(10):
            yield os_.write(0, i * KB, 1024 * KB)
        return None

    run_process(sim, gen())
    sim.run()
    assert os_.device.completed > 0  # flusher issued real IOs


def test_io_observer_sees_block_request(sim):
    os_ = _os(sim)
    seen = []

    def gen():
        yield os_.read(0, 10 * GB, 4 * KB, io_observer=seen.append)
        return None

    run_process(sim, gen())
    assert len(seen) == 1
    assert seen[0].offset == 10 * GB


def test_memory_read_time_charges_actual_pages_touched(sim):
    """Regression: ``_memory_read_time`` ignored the read's offset, so an
    unaligned read spanning two pages was billed like an aligned one."""
    os_ = _os(sim, cache_pages=100)
    os_.cache.insert(0, 0, 8 * KB)  # pages 0 and 1 resident
    p = os_.params

    def gen():
        aligned = yield os_.read(0, 0, 4 * KB)
        unaligned = yield os_.read(0, 2 * KB, 4 * KB)  # straddles 0|1
        return aligned, unaligned

    aligned, unaligned = run_process(sim, gen())
    assert aligned.cache_hit and unaligned.cache_hit
    one_page = p.syscall_us + p.memory_read_base_us \
        + p.memory_read_per_page_us
    assert aligned.latency == one_page
    assert unaligned.latency == one_page + p.memory_read_per_page_us


def test_addrcheck_ebusy_counted_separately(sim):
    os_ = _os(sim, cache_pages=100, mitt=True)
    verdict = os_.addrcheck(0, 0, 4 * KB, deadline=10.0)
    assert is_ebusy(verdict)
    assert os_.addrcheck_ebusy == 1
    # Legacy compat: ebusy_returned still includes probe rejections.
    assert os_.ebusy_returned == 1

    def gen():
        for i in range(6):
            os_.read(0, i * 10 * GB, 4096 * KB, pid=9)
        result = yield os_.read(0, 500 * GB, 4 * KB, pid=1,
                                deadline=5 * MS)
        return result

    result = run_process(sim, gen())
    assert is_ebusy(result)
    assert os_.ebusy_returned == 2
    assert os_.addrcheck_ebusy == 1  # read-path EBUSY is not a probe


def test_addrcheck_probe_verdicts_tagged_on_bus():
    from repro.kernel import PageCache
    from repro.obs.bus import TraceRecorder
    from repro.obs.events import OS_EBUSY, VERDICT
    from repro.sim import Simulator

    rec = TraceRecorder()
    sim = Simulator(seed=4, recorder=rec)
    os_ = _os(sim, cache_pages=100, mitt=True)
    assert is_ebusy(os_.addrcheck(0, 0, 4 * KB, deadline=10.0))
    (verdict,) = rec.by_topic(VERDICT)
    assert verdict.fields["probe"] is True
    assert verdict.fields["accept"] is False
    (ebusy,) = rec.by_topic(OS_EBUSY)
    assert ebusy.fields["probe"] is True


def test_late_cancellation_returns_ebusy(sim):
    """MittCFQ bump-back: accepted IO cancelled later -> EBUSY."""
    os_ = _os(sim, mitt=True, depth=1)

    def gen():
        os_.read(0, 0, 4 * KB, pid=9)  # briefly occupy the device
        # Admitted comfortably: predicted ~ one small read ahead.
        ev = os_.read(0, 700 * GB, 4 * KB, pid=1, deadline=25 * MS)
        # A flood of closer, earlier-offset IOs bumps the deadline IO back.
        for i in range(20):
            os_.read(0, i * GB, 1024 * KB, pid=1)
        result = yield ev
        return result

    result = run_process(sim, gen())
    assert is_ebusy(result)
    assert os_.predictor.late_cancellations >= 1
