"""Property-based tests of storage-stack invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import GB, KB
from repro.devices import (BlockRequest, Disk, DiskParams, IoClass, IoOp,
                           Ssd, SsdGeometry)
from repro.engines import KeySpace
from repro.kernel import CfqScheduler, PageCache
from repro.sim import Simulator

offsets = st.integers(min_value=0, max_value=900 * GB)


@given(offs=st.lists(offsets, min_size=1, max_size=40))
@settings(max_examples=30, deadline=None)
def test_disk_completes_every_request_exactly_once(offs):
    sim = Simulator(seed=1)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=31))
    completions = []
    pending = list(offs)

    def feeder():
        for off in pending:
            while not disk.has_room():
                yield 100.0
            req = BlockRequest(IoOp.READ, off - off % 4096, 4 * KB)
            req.add_callback(lambda r: completions.append(r.req_id))
            disk.submit(req)
        return None

    sim.process(feeder())
    sim.run()
    assert len(completions) == len(offs)
    assert len(set(completions)) == len(offs)


@given(offs=st.lists(offsets, min_size=1, max_size=40),
       classes=st.lists(st.sampled_from(list(IoClass)), min_size=1,
                        max_size=40))
@settings(max_examples=30, deadline=None)
def test_cfq_never_loses_or_duplicates(offs, classes):
    sim = Simulator(seed=2)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=2))
    sched = CfqScheduler(sim, disk)
    done = []
    for i, off in enumerate(offs):
        cls = classes[i % len(classes)]
        req = BlockRequest(IoOp.READ, off - off % 4096, 4 * KB,
                           pid=i % 5, ioclass=cls)
        req.add_callback(lambda r: done.append(r.req_id))
        sched.submit(req)
    sim.run()
    assert len(done) == len(offs)
    assert len(set(done)) == len(offs)
    assert sched.queued == 0


@given(lpns=st.lists(st.integers(min_value=0, max_value=4000), min_size=1,
                     max_size=120))
@settings(max_examples=20, deadline=None)
def test_ssd_ftl_mapping_stays_consistent(lpns):
    sim = Simulator(seed=3)
    geo = SsdGeometry(n_channels=2, chips_per_channel=2,
                      blocks_per_chip=16, pages_per_block=32,
                      jitter_frac=0.0)
    ssd = Ssd(sim, geo)

    def writer():
        for lpn in lpns:
            req = BlockRequest(IoOp.WRITE, lpn * geo.page_size,
                               geo.page_size)
            done = sim.event()
            req.add_callback(lambda r: done.try_succeed())
            ssd.submit(req)
            yield done

    sim.process(writer())
    sim.run()
    # Every written lpn maps to a real chip; valid counts are sane.
    for lpn in set(lpns):
        chip = ssd.read_chip_of(lpn)
        assert 0 <= chip < geo.n_chips
    for chip in ssd._chips:
        assert all(0 <= v <= geo.pages_per_block
                   for v in chip.valid_count)
    total_valid = sum(sum(c.valid_count) for c in ssd._chips)
    assert total_valid >= len(set(lpns))


@given(accesses=st.lists(st.tuples(st.integers(0, 3),
                                   st.integers(0, 60)),
                         min_size=1, max_size=300),
       capacity=st.integers(min_value=1, max_value=40))
def test_page_cache_never_exceeds_capacity(accesses, capacity):
    sim = Simulator(seed=4)
    cache = PageCache(sim, capacity)
    for file_id, page in accesses:
        cache.insert(file_id, page * 4096, 4096)
        assert cache.used_pages <= capacity
    # Most-recently inserted page is always resident.
    last_file, last_page = accesses[-1]
    assert cache.resident(last_file, last_page * 4096, 4096)


@given(n_keys=st.integers(min_value=1, max_value=5000),
       key=st.integers(min_value=0))
def test_keyspace_locate_always_in_span(n_keys, key):
    ks = KeySpace(n_keys, value_size=1 * KB,
                  span_bytes=max(n_keys * 4 * KB, 1 * GB))
    key = key % n_keys
    offset, size = ks.locate(key)
    assert 0 <= offset < ks.span_bytes
    assert offset % ks.align == 0
    assert size == 1 * KB


@given(durations=st.lists(st.sampled_from([100.0, 1000.0, 2000.0, 6000.0]),
                          min_size=1, max_size=50))
@settings(max_examples=20, deadline=None)
def test_mittssd_mirror_resyncs_when_idle(durations):
    """After every op completes, chip horizons must equal `now`-or-past."""
    from repro.devices.ssd_profile import SsdLatencyModel
    from repro.kernel import NoopScheduler, OS
    from repro.mittos import MittSsd
    sim = Simulator(seed=5)
    geo = SsdGeometry(n_channels=2, chips_per_channel=2, jitter_frac=0.0)
    ssd = Ssd(sim, geo)
    predictor = MittSsd(ssd, SsdLatencyModel.from_spec(geo))
    OS(sim, ssd, NoopScheduler(sim, ssd), predictor=predictor)
    rng = sim.rng("ops")
    for duration in durations:
        chip = ssd._chips[rng.randrange(geo.n_chips)]
        kind = {100.0: "read", 1000.0: "program", 2000.0: "program",
                6000.0: "erase"}[duration]
        ssd._run_chip_op(chip, duration, lambda: None, op_kind=kind)
    sim.run()
    for i in range(geo.n_chips):
        assert predictor._chip_outstanding[i] == 0
        assert predictor._chip_next_free[i] <= sim.now
