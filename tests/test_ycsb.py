"""Tests of the YCSB-like driver."""

from repro._units import MS, SEC
from repro.experiments.common import build_disk_cluster, make_strategy
from repro.workloads import UniformKeys
from repro.workloads.ycsb import YcsbClient, run_ycsb
from repro.metrics.latency import LatencyRecorder


def test_client_records_one_latency_per_op(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("base", env.cluster)
    rec = LatencyRecorder()
    client = YcsbClient(sim, strategy, UniformKeys(100, sim.rng("k")),
                        rec, n_ops=10, think_time_us=1 * MS)
    proc = client.run()
    sim.run_until(proc, limit=60 * SEC)
    assert len(rec) == 10
    assert proc.value == 10


def test_scale_factor_waits_for_all(sim):
    env = build_disk_cluster(sim, 6)
    strategy = make_strategy("base", env.cluster)
    rec_sf1 = LatencyRecorder()
    rec_sf5 = LatencyRecorder()
    c1 = YcsbClient(sim, strategy, UniformKeys(500, sim.rng("a")),
                    rec_sf1, n_ops=20, scale_factor=1)
    c5 = YcsbClient(sim, strategy, UniformKeys(500, sim.rng("b")),
                    rec_sf5, n_ops=20, scale_factor=5)
    p1, p5 = c1.run(), c5.run()
    sim.run_until(sim.all_of([p1, p5]), limit=120 * SEC)
    # max-of-5 stochastically dominates a single sample.
    assert rec_sf5.mean_ms > rec_sf1.mean_ms


def test_run_ycsb_merges_recorders(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("base", env.cluster)
    dists = [UniformKeys(100, sim.rng(f"k{i}")) for i in range(4)]
    rec, procs = run_ycsb(sim, lambda i: strategy, dists, 4, 5,
                          name="test")
    sim.run_until(sim.all_of(procs), limit=60 * SEC)
    assert len(rec) == 20
    assert rec.name == "test"
