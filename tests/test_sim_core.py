"""Tests of the simulator event loop."""

import pytest

from repro.errors import ProcessCrashed, SchedulingInPastError
from repro.sim import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_runs_in_time_order(sim):
    log = []
    sim.schedule(30, log.append, "c")
    sim.schedule(10, log.append, "a")
    sim.schedule(20, log.append, "b")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 30


def test_equal_times_run_in_scheduling_order(sim):
    log = []
    for name in "abcde":
        sim.schedule(5, log.append, name)
    sim.run()
    assert log == list("abcde")


def test_schedule_in_past_raises(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SchedulingInPastError):
        sim.schedule_at(5, lambda: None)


def test_cancel_prevents_execution(sim):
    log = []
    handle = sim.schedule(10, log.append, "x")
    sim.schedule(5, handle.cancel)
    sim.run()
    assert log == []


def test_run_until_limit_advances_clock(sim):
    sim.schedule(100, lambda: None)
    sim.run(until=50)
    assert sim.now == 50
    sim.run()
    assert sim.now == 100


def test_step_returns_false_when_drained(sim):
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_rng_streams_are_deterministic_and_independent():
    a1 = Simulator(seed=7).rng("x").random()
    a2 = Simulator(seed=7).rng("x").random()
    b = Simulator(seed=7).rng("y").random()
    c = Simulator(seed=8).rng("x").random()
    assert a1 == a2
    assert a1 != b
    assert a1 != c


def test_rng_same_name_returns_same_stream(sim):
    assert sim.rng("z") is sim.rng("z")


def test_timeout_event(sim):
    ev = sim.timeout(25, value="done")
    sim.run()
    assert ev.triggered and ev.value == "done"
    assert sim.now == 25


def test_run_until_event(sim):
    ev = sim.timeout(40)
    sim.schedule(100, lambda: None)
    assert sim.run_until(ev) is True
    assert sim.now == 40


def test_run_until_event_with_limit(sim):
    ev = sim.timeout(500)
    assert sim.run_until(ev, limit=100) is False


def test_unhandled_process_failure_raises(sim):
    def boom():
        yield 5
        raise ValueError("kaput")

    sim.process(boom())
    with pytest.raises(ProcessCrashed):
        sim.run()


def test_handled_process_failure_does_not_raise(sim):
    def boom():
        yield 5
        raise ValueError("kaput")

    def watcher():
        try:
            yield sim.process(boom())
        except ValueError:
            return "caught"

    proc = sim.process(watcher())
    sim.run()
    assert proc.value == "caught"


def test_identical_seeds_replay_identically():
    def trace(seed):
        sim = Simulator(seed=seed)
        log = []

        def worker():
            rng = sim.rng("w")
            for _ in range(20):
                yield sim.timeout(rng.uniform(1, 10))
                log.append(round(sim.now, 6))

        sim.process(worker())
        sim.run()
        return log

    assert trace(3) == trace(3)
    assert trace(3) != trace(4)
