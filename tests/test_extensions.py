"""Tests of the §8.2 extensions: VMM timeslices and runtime GC."""

import pytest

from repro._units import MB, MS
from repro.errors import EBUSY
from repro.extensions import ManagedRuntime, MittGc, MittVmm, Vmm


# -- VMM ---------------------------------------------------------------------

def test_vmm_needs_a_vm(sim):
    with pytest.raises(ValueError):
        Vmm(sim, 0)


def test_rotation_is_round_robin(sim):
    vmm = Vmm(sim, 3, timeslice_us=30 * MS)
    assert vmm.running_vm(0) == 0
    assert vmm.running_vm(30 * MS) == 1
    assert vmm.running_vm(60 * MS) == 2
    assert vmm.running_vm(90 * MS) == 0


def test_next_wake_math(sim):
    vmm = Vmm(sim, 3, timeslice_us=30 * MS)
    assert vmm.next_wake(0, now=0.0) == 0.0           # running now
    assert vmm.next_wake(1, now=0.0) == 30 * MS
    assert vmm.next_wake(2, now=0.0) == 60 * MS
    assert vmm.next_wake(0, now=31 * MS) == 90 * MS   # full rotation away


def test_message_to_running_vm_is_fast(sim):
    vmm = Vmm(sim, 3)
    ev = vmm.deliver(0, service_us=100.0)
    sim.run()
    assert ev.value == pytest.approx(100.0)
    assert vmm.parked == 0


def test_message_to_frozen_vm_parks(sim):
    vmm = Vmm(sim, 3, timeslice_us=30 * MS)
    ev = vmm.deliver(2, service_us=100.0)
    sim.run()
    assert ev.value == pytest.approx(60 * MS + 100.0)
    assert vmm.parked == 1


def test_mittvmm_rejects_long_parks(sim):
    vmm = Vmm(sim, 3, timeslice_us=30 * MS)
    mitt = MittVmm(vmm)
    ev = mitt.deliver(2, deadline_us=20 * MS)
    sim.run()
    assert ev.value is EBUSY
    assert mitt.rejected == 1


def test_mittvmm_accepts_running_vm(sim):
    vmm = Vmm(sim, 3, timeslice_us=30 * MS)
    mitt = MittVmm(vmm)
    ev = mitt.deliver(0, deadline_us=20 * MS)
    sim.run()
    assert ev.value is not EBUSY
    assert mitt.admitted == 1


def test_mittvmm_cuts_the_park_tail(sim):
    """End to end: rejecting frozen-VM messages removes the 30-60ms tail."""
    vmm = Vmm(sim, 3, timeslice_us=30 * MS)
    mitt = MittVmm(vmm)
    base_lat, mitt_lat = [], []

    def client(latencies, deadline):
        rng = sim.rng(f"vmm/{deadline}")
        for _ in range(60):
            vm = rng.randrange(3)
            start = sim.now
            result = yield mitt.deliver(vm, deadline_us=deadline)
            if result is EBUSY:
                # failover: the replica's VM on another machine is
                # running with probability ~1; model as a fast retry.
                yield 300.0
                yield vmm.deliver(vmm.running_vm(), service_us=100.0)
            latencies.append(sim.now - start)
            yield 5 * MS

    proc1 = sim.process(client(base_lat, None))
    sim.run_until(proc1)
    proc2 = sim.process(client(mitt_lat, 5 * MS))
    sim.run_until(proc2)
    assert max(base_lat) > 25 * MS    # parked behind frozen VMs
    assert max(mitt_lat) < 10 * MS    # rejected + retried instead


# -- managed runtime / GC ------------------------------------------------------

def _runtime(sim, **kw):
    defaults = dict(heap_bytes=16 * MB, live_fraction=0.25,
                    min_pause_us=50 * MS)
    defaults.update(kw)
    return ManagedRuntime(sim, **defaults)


def test_allocation_without_pressure_is_fast(sim):
    runtime = _runtime(sim)
    ev = runtime.allocate(1 * MB, work_us=200.0)
    sim.run()
    assert ev.value == pytest.approx(200.0)


def test_gc_triggers_at_threshold_and_frees(sim):
    runtime = _runtime(sim)

    def hammer():
        for _ in range(20):
            yield runtime.allocate(1 * MB)

    proc = sim.process(hammer())
    sim.run_until(proc)
    assert runtime.collections >= 1
    assert runtime.allocated < runtime.heap_bytes


def test_triggering_request_stalls_through_pause(sim):
    runtime = _runtime(sim)
    runtime.allocated = int(0.89 * runtime.heap_bytes)
    ev = runtime.allocate(1 * MB, work_us=200.0)
    sim.run()
    assert ev.value >= runtime.min_pause_us


def test_other_threads_stall_during_pause(sim):
    runtime = _runtime(sim)
    runtime.allocated = int(0.89 * runtime.heap_bytes)
    trigger = runtime.allocate(1 * MB)
    bystander = runtime.allocate(1024, work_us=10.0)
    sim.run()
    assert bystander.value >= runtime.min_pause_us * 0.9  # stop-the-world


def test_mittgc_rejects_during_pause(sim):
    runtime = _runtime(sim)
    mitt = MittGc(runtime)
    runtime.allocated = int(0.89 * runtime.heap_bytes)
    runtime.allocate(1 * MB)  # triggers the pause
    ev = mitt.allocate(1024, deadline_us=5 * MS)
    sim.run()
    assert ev.value is EBUSY


def test_mittgc_predicts_imminent_collection(sim):
    runtime = _runtime(sim)
    mitt = MittGc(runtime)
    runtime.allocated = int(0.89 * runtime.heap_bytes)
    runtime.alloc_rate = 1000.0  # bytes/us: the next alloc will trigger
    stall = mitt.predicted_stall_us(work_us=10_000.0)
    assert stall >= runtime.min_pause_us
    ev = mitt.allocate(1 * MB, deadline_us=5 * MS, work_us=10_000.0)
    sim.run()
    assert ev.value is EBUSY


def test_mittgc_accepts_with_headroom(sim):
    runtime = _runtime(sim)
    mitt = MittGc(runtime)
    ev = mitt.allocate(1024, deadline_us=5 * MS)
    sim.run()
    assert ev.value is not EBUSY
