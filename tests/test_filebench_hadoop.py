"""Tests of the macrobenchmark noise generators (§7.8.1)."""

import random

import pytest

from repro._units import GB, MB, SEC
from repro.experiments.common import build_disk_cluster
from repro.workloads.filebench import personalities, run_filebench
from repro.workloads.hadoop import generate_jobs, run_jobs


def test_three_personalities():
    assert personalities() == ["fileserver", "varmail", "webserver"]


def test_unknown_personality_rejected(sim):
    env = build_disk_cluster(sim, 1, replication=1)
    with pytest.raises(ValueError):
        run_filebench(sim, env.nodes[0].os, "database", 10 * GB, 1 * SEC)


@pytest.mark.parametrize("personality", ["fileserver", "varmail",
                                         "webserver"])
def test_personality_issues_io(sim, personality):
    env = build_disk_cluster(sim, 1, replication=1)
    node = env.nodes[0]
    procs = run_filebench(sim, node.os, personality, 10 * GB,
                          until_us=2 * SEC)
    sim.run()
    assert all(p.triggered for p in procs)
    assert node.os.device.completed > 0


def test_generate_jobs_heavy_tailed():
    jobs = generate_jobs(random.Random(1), n_jobs=50)
    sizes = sorted(j.input_bytes for j in jobs)
    assert len(jobs) == 50
    assert sizes[-1] > 5 * sizes[len(sizes) // 2]  # heavy tail
    arrivals = [j.arrival_us for j in jobs]
    assert arrivals == sorted(arrivals)
    assert all(j.output_bytes <= j.input_bytes for j in jobs)


def test_run_jobs_completes(sim):
    env = build_disk_cluster(sim, 1, replication=1)
    node = env.nodes[0]
    jobs = generate_jobs(random.Random(2), n_jobs=3,
                         mean_gap_us=0.2 * SEC,
                         median_input_bytes=2 * MB)
    driver = run_jobs(sim, node.os, jobs, 10 * GB)
    sim.run()
    assert driver.value == 3
    assert node.os.device.completed >= 3
