"""Call-graph resolution edge cases: what resolves, what is skipped.

The graph is deliberately conservative — a call is either statically
nameable or it produces no edge at all.  These tests pin down the edge
cases that look resolvable but are not (``functools.partial``, property
attribute access, calls through class objects), so a future "smarter"
resolver changing the contract shows up as a test diff, not as silent
new findings from the interprocedural rules.
"""

import ast
from pathlib import Path

from repro.analysis.callgraph import ProgramGraph, module_name_of


def build(files):
    parsed = [(path, Path(path).parts, ast.parse(src))
              for path, src in files.items()]
    return ProgramGraph.build(parsed)


def edges(graph):
    return {(site.caller[1], site.callee[1])
            for site in graph.call_sites}


# -- module naming -----------------------------------------------------------

def test_module_name_of_strips_root_and_init():
    assert module_name_of(("src", "repro", "obs", "bus.py")) \
        == "repro.obs.bus"
    assert module_name_of(("src", "repro", "sim", "__init__.py")) \
        == "repro.sim"
    # Files outside the package root still get a usable (path-ish) name.
    assert module_name_of(("benchmarks", "bench_kernel.py")) \
        == "benchmarks.bench_kernel"


# -- decorated functions and methods -----------------------------------------

def test_decorated_functions_still_resolve_by_name():
    graph = build({"src/repro/kernel/mod.py": (
        "import functools\n"
        "def audit(fn):\n"
        "    return fn\n"
        "@audit\n"
        "def helper():\n"
        "    return 1\n"
        "@functools.lru_cache(maxsize=None)\n"
        "def cached():\n"
        "    return helper()\n"
        "def entry():\n"
        "    return cached() + helper()\n"
    )})
    got = edges(graph)
    # Decoration does not hide a def: calls to the decorated names
    # resolve to the (undecorated) function nodes.
    assert ("cached", "helper") in got
    assert ("entry", "cached") in got and ("entry", "helper") in got
    # The decorator *application* is a call too — to the local wrapper.
    assert ("helper", "audit") not in got  # decorators are not call sites
    assert (graph.functions[("src/repro/kernel/mod.py", "cached")]
            .qualname == "cached")


def test_decorated_methods_resolve_through_self():
    graph = build({"src/repro/kernel/mod.py": (
        "class Sched:\n"
        "    @staticmethod\n"
        "    def _key(req):\n"
        "        return req.rid\n"
        "    def pick(self, reqs):\n"
        "        return self._key(reqs[0])\n"
    )})
    assert ("Sched.pick", "Sched._key") in edges(graph)


# -- functools.partial: conservative, no edge --------------------------------

def test_partial_application_produces_no_edge():
    graph = build({"src/repro/kernel/mod.py": (
        "from functools import partial\n"
        "def helper(a, b):\n"
        "    return a + b\n"
        "def entry():\n"
        "    bound = partial(helper, 1)\n"
        "    return bound(2)\n"
    )})
    got = edges(graph)
    # Neither the partial() wrap nor the bound() invocation resolves to
    # helper — the reference flows through a value, which the graph
    # does not chase.  The direct-call contract stays intact:
    assert ("entry", "helper") not in got
    graph2 = build({"src/repro/kernel/mod.py": (
        "def helper(a, b):\n"
        "    return a + b\n"
        "def entry():\n"
        "    return helper(1, 2)\n"
    )})
    assert ("entry", "helper") in edges(graph2)


# -- properties: attribute access is not a call ------------------------------

def test_property_access_is_not_a_call_edge():
    graph = build({"src/repro/devices/mod.py": (
        "class Req:\n"
        "    @property\n"
        "    def latency(self):\n"
        "        return self._done - self._start\n"
        "    def report(self):\n"
        "        return self.latency\n"      # attribute, not a call
    )})
    # The getter IS a node in the graph ...
    assert ("src/repro/devices/mod.py", "Req.latency") in graph.functions
    # ... but a property read produces no call edge (it is an
    # ast.Attribute, not an ast.Call).
    assert ("Req.report", "Req.latency") not in edges(graph)


def test_explicit_method_call_on_self_does_resolve():
    graph = build({"src/repro/devices/mod.py": (
        "class Req:\n"
        "    def latency(self):\n"
        "        return self._done - self._start\n"
        "    def report(self):\n"
        "        return self.latency()\n"
    )})
    assert ("Req.report", "Req.latency") in edges(graph)


# -- cross-object and class-object calls stay unresolved ---------------------

def test_calls_through_other_objects_are_skipped():
    graph = build({"src/repro/kernel/mod.py": (
        "class Sched:\n"
        "    def submit(self, req):\n"
        "        return req\n"
        "class OS:\n"
        "    def read(self, req):\n"
        "        return self.scheduler.submit(req)\n"   # cross-object
        "def raw(req):\n"
        "    return Sched.submit(None, req)\n"          # via class object
    )})
    got = edges(graph)
    assert ("OS.read", "Sched.submit") not in got
    assert ("raw", "Sched.submit") not in got


# -- cross-file imports ------------------------------------------------------

def test_from_import_and_module_alias_resolution():
    graph = build({
        "src/repro/faults/plane.py": (
            "def drop(sim):\n"
            "    return sim.rng('faults/net').random() < 0.1\n"
        ),
        "src/repro/cluster/net.py": (
            "from repro.faults.plane import drop\n"
            "import repro.faults.plane as plane\n"
            "def hop(sim):\n"
            "    return drop(sim) or plane.drop(sim)\n"
        ),
    })
    got = edges(graph)
    assert ("hop", "drop") in got
    assert sum(1 for e in got if e == ("hop", "drop")) == 1  # set-deduped
    assert len([s for s in graph.call_sites
                if s.caller[1] == "hop"]) == 2
