"""Tests of the terminal CDF plotter."""

import pytest

from repro._units import MS
from repro.metrics.ascii_plot import ascii_cdf
from repro.metrics.latency import LatencyRecorder


def _rec(name, values_ms):
    rec = LatencyRecorder(name)
    for v in values_ms:
        rec.add(v * MS)
    return rec


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        ascii_cdf([])


def test_plot_contains_markers_axis_and_legend():
    fast = _rec("fast", [1.0] * 50 + [2.0] * 50)
    slow = _rec("slow", [5.0] * 50 + [40.0] * 50)
    out = ascii_cdf([fast, slow], title="Figure X")
    assert out.startswith("Figure X")
    assert "*=fast" in out and "o=slow" in out
    assert "p100.0" in out or "p 99" in out or "p100" in out
    assert "ms" in out


def test_faster_line_sits_left_of_slower():
    fast = _rec("fast", [1.0] * 100)
    slow = _rec("slow", [30.0] * 100)
    out = ascii_cdf([fast, slow])
    for line in out.splitlines():
        if "*" in line and "o" in line and "|" in line:
            assert line.index("*") < line.index("o")


def test_y_min_clips_the_body():
    rec = _rec("r", list(range(1, 101)))
    out = ascii_cdf([rec], y_min=0.9)
    assert "p 90" in out.replace("p 90.0", "p 90") or "p 90.0" in out


def test_x_max_clips_outliers():
    rec = _rec("r", [1.0] * 99 + [1000.0])
    out = ascii_cdf([rec], x_max=10.0)
    assert "10.0" in out
