"""Tests of MittCFQ: CFQ-aware estimates + the tolerable-time ledger."""

from repro._units import GB, KB, MS
from repro.devices import BlockRequest, Disk, DiskParams, IoClass, IoOp
from repro.devices.disk_profile import profile_disk
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, OS
from repro.mittos import AccuracyTracker, MittCfq

MODEL = profile_disk(lambda sim: Disk(sim, DiskParams(
    jitter_frac=0.0, hiccup_prob=0.0)))


def _stack(sim, depth=1, **kwargs):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=depth))
    sched = CfqScheduler(sim, disk)
    predictor = MittCfq(MODEL, **kwargs)
    os_ = OS(sim, disk, sched, predictor=predictor)
    return os_, predictor, sched


def _req(offset, size=4 * KB, pid=1, ioclass=IoClass.BE):
    return BlockRequest(IoOp.READ, offset, size, pid=pid, ioclass=ioclass)


def test_higher_class_waits_ignored_for_rt_request(sim):
    os_, predictor, sched = _stack(sim)
    sched.submit(_req(0))  # in device
    for i in range(5):
        sched.submit(_req(i * 10 * GB, 1024 * KB, pid=9,
                          ioclass=IoClass.BE))
    rt_probe = _req(500 * GB, ioclass=IoClass.RT, pid=2)
    be_probe = _req(500 * GB, ioclass=IoClass.BE, pid=2)
    rt_wait, _ = predictor._estimate(rt_probe)
    be_wait, _ = predictor._estimate(be_probe)
    assert rt_wait < be_wait  # RT jumps the BestEffort queue


def test_own_queue_position_matters(sim):
    os_, predictor, sched = _stack(sim)
    sched.submit(_req(0))
    for i in range(1, 6):
        sched.submit(_req(i * 100 * GB, 1024 * KB, pid=1))
    early_probe = _req(50 * GB, pid=1)
    late_probe = _req(900 * GB, pid=1)
    early_wait, _ = predictor._estimate(early_probe)
    late_wait, _ = predictor._estimate(late_probe)
    assert early_wait < late_wait


def test_bump_back_cancellation(sim):
    os_, predictor, sched = _stack(sim)

    def gen():
        os_.read(0, 0, 4 * KB, pid=9)
        ev = os_.read(0, 800 * GB, 4 * KB, pid=1, deadline=20 * MS)
        for i in range(15):
            os_.read(0, i * GB, 1024 * KB, pid=1)
        result = yield ev
        return result

    proc = sim.process(gen())
    sim.run()
    assert is_ebusy(proc.value)
    assert predictor.late_cancellations >= 1


def test_no_cancellation_when_disabled(sim):
    os_, predictor, sched = _stack(sim, cancel_bumped=False)

    def gen():
        os_.read(0, 0, 4 * KB, pid=9)
        ev = os_.read(0, 800 * GB, 4 * KB, pid=1, deadline=20 * MS)
        for i in range(15):
            os_.read(0, i * GB, 1024 * KB, pid=1)
        result = yield ev
        return result

    proc = sim.process(gen())
    sim.run()
    assert predictor.late_cancellations == 0
    assert not is_ebusy(proc.value)  # it just (slowly) completes


def test_rt_arrivals_debit_lower_classes(sim):
    os_, predictor, sched = _stack(sim)

    def gen():
        os_.read(0, 0, 4 * KB, pid=9)
        # Admitted with a modest margin; offset 0 keeps same-pid IOs from
        # cutting in line — only the RT flood can bump it.
        ev = os_.read(0, 0, 4 * KB, pid=1, deadline=15 * MS,
                      ioclass=IoClass.BE)
        for i in range(15):
            os_.read(0, (i + 1) * 30 * GB, 1024 * KB, pid=8,
                     ioclass=IoClass.RT)
        result = yield ev
        return result

    proc = sim.process(gen())
    sim.run()
    assert is_ebusy(proc.value)


def test_dispatched_requests_are_not_cancelled(sim):
    os_, predictor, sched = _stack(sim, depth=4)
    ev = os_.read(0, 10 * GB, 4 * KB, pid=1, deadline=50 * MS)
    # The request dispatched immediately (device had room): the ledger
    # must leave it alone no matter what arrives now.
    for i in range(10):
        os_.read(0, i * GB, 1024 * KB, pid=1, ioclass=IoClass.RT)
    sim.run()
    assert not is_ebusy(ev.value)


def test_shadow_mode_flips_accuracy_decision(sim):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=1))
    sched = CfqScheduler(sim, disk)
    accuracy = AccuracyTracker()
    predictor = MittCfq(MODEL, shadow=True, accuracy=accuracy)
    os_ = OS(sim, disk, sched, predictor=predictor)

    os_.read(0, 0, 4 * KB, pid=9)
    ev = os_.read(0, 800 * GB, 4 * KB, pid=1, deadline=20 * MS)
    for i in range(15):
        os_.read(0, i * GB, 1024 * KB, pid=1)
    sim.run()
    assert not is_ebusy(ev.value)  # shadow: the IO still ran
    assert predictor.late_cancellations >= 1


def test_ledger_pruning(sim):
    os_, predictor, sched = _stack(sim, depth=1)
    sched.submit(_req(0))
    for i in range(80):
        req = _req(i * 10 * GB, pid=1)
        req.abs_deadline = sim.now + 10_000 * MS
        predictor.admit(req, 10_000 * MS)
        sched.submit(req)
    assert len(predictor._ledger) <= 81
    sim.run()


def test_process_count_passthrough(sim):
    os_, predictor, sched = _stack(sim)
    sched.submit(_req(0))
    sched.submit(_req(1 * GB, pid=5))
    sched.submit(_req(2 * GB, pid=6))
    assert predictor.process_count() == 2
