"""Tests of the trace-diff tool (obs/diff) and its CLI."""

from repro.obs.bus import TraceRecorder
from repro.obs.diff import diff_traces
from repro.obs.events import (IO_COMPLETE, IO_SUBMIT, RPC_SEND, TraceEvent)
from repro.sim import Simulator


def ev(t, topic, **fields):
    return TraceEvent(t, topic, fields)


def sample_events():
    return [
        ev(0.0, RPC_SEND, src=-1, dst=0, latency=300.0),
        ev(0.0, RPC_SEND, src=-1, dst=1, latency=310.0),
        ev(5.0, IO_SUBMIT, req=1, dev="n0", offset=0, size=4096),
        ev(9.0, IO_COMPLETE, req=1, device="n0", latency=4.0),
    ]


def test_identical_traces_have_no_divergence():
    report = diff_traces(sample_events(), sample_events())
    assert report.identical
    assert report.topic_deltas == ()
    assert "no divergence" in report.render()


def test_field_change_pinpoints_first_divergent_group():
    perturbed = sample_events()
    perturbed[2] = ev(5.0, IO_SUBMIT, req=1, dev="n0", offset=8192,
                      size=4096)
    report = diff_traces(sample_events(), perturbed)
    assert not report.identical
    time, only_a, only_b = report.divergence
    assert time == 5.0
    assert len(only_a) == 1 and "4096" in only_a[0]
    assert len(only_b) == 1 and "8192" in only_b[0]
    # Same topics on both sides: counts didn't move.
    assert report.topic_deltas == ()
    assert "per-topic counts identical" in report.render()


def test_extra_event_shows_in_topic_deltas():
    longer = sample_events() + [ev(12.0, IO_SUBMIT, req=2, dev="n0",
                                   offset=0, size=4096)]
    report = diff_traces(sample_events(), longer)
    assert not report.identical
    assert report.divergence[0] == 12.0
    assert report.topic_deltas == ((IO_SUBMIT, 1, 2),)
    assert "io.submit" in report.render()
    assert "(+1)" in report.render()


def test_within_tick_reorder_compares_equal():
    """Events inside one timestamp group are sorted before comparison."""
    reordered = sample_events()
    reordered[0], reordered[1] = reordered[1], reordered[0]
    assert diff_traces(sample_events(), reordered).identical


def test_canonical_mode_ignores_req_relabeling():
    relabeled = [
        ev(0.0, RPC_SEND, src=-1, dst=0, latency=300.0),
        ev(0.0, RPC_SEND, src=-1, dst=1, latency=310.0),
        ev(5.0, IO_SUBMIT, req=7, dev="n0", offset=0, size=4096),
        ev(9.0, IO_COMPLETE, req=7, device="n0", latency=4.0),
    ]
    assert not diff_traces(sample_events(), relabeled).identical
    assert diff_traces(sample_events(), relabeled, canonical=True).identical


# -- CLI ----------------------------------------------------------------------
def _write_trace(path, events):
    rec = TraceRecorder()
    Simulator(seed=1, recorder=rec)
    rec.events.extend(events)
    rec.write_jsonl(path)
    return path


def test_diff_cli_identical_exits_zero(tmp_path, capsys):
    from repro.obs.__main__ import main
    a = _write_trace(tmp_path / "a.jsonl", sample_events())
    assert main(["diff", str(a), str(a)]) == 0
    assert "no divergence" in capsys.readouterr().out


def test_diff_cli_divergent_exits_one(tmp_path, capsys):
    from repro.obs.__main__ import main
    a = _write_trace(tmp_path / "a.jsonl", sample_events())
    longer = sample_events() + [ev(12.0, IO_SUBMIT, req=2, dev="n0",
                                   offset=0, size=4096)]
    b = _write_trace(tmp_path / "b.jsonl", longer)
    assert main(["diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "first divergent group at t=12.0" in out


def test_diff_cli_missing_file_friendly_error(tmp_path, capsys):
    from repro.obs.__main__ import main
    a = _write_trace(tmp_path / "a.jsonl", sample_events())
    assert main(["diff", str(a), str(tmp_path / "nope.jsonl")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "nope.jsonl" in err


def test_diff_cli_truncated_file_friendly_error(tmp_path, capsys):
    from repro.obs.__main__ import main
    a = _write_trace(tmp_path / "a.jsonl", sample_events())
    bad = tmp_path / "bad.jsonl"
    bad.write_text(a.read_text()[:25])  # cut mid-JSON-object
    assert main(["diff", str(a), str(bad)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "bad.jsonl:1" in err
