"""Tests of the FaultSpec JSON round-trip and the CLI --faults plumbing."""

import json

import pytest

from repro._units import MS, SEC
from repro.experiments.__main__ import main as experiments_main
from repro.faults import (CrashWindow, DeviceStorm, FailSlow, FaultSpec,
                          MessageLoss, Partition, ReadErrors)


def _full_spec():
    """A spec touching every member class and every scalar knob."""
    return FaultSpec(
        crashes=(CrashWindow(node=1, start_us=1 * SEC, duration_us=2 * SEC),
                 CrashWindow(node=4, start_us=5 * SEC)),
        fail_slow=(FailSlow(node=2, start_us=0.0, duration_us=1 * SEC,
                            cpu_factor=3.0, device_factor=2.0),),
        message_loss=(MessageLoss(rate=0.1, src=-1, dst=3),),
        partitions=(Partition(a=0, b=5, start_us=2 * SEC),),
        device_storms=(DeviceStorm(node=3, start_us=1 * SEC,
                                   duration_us=1 * SEC, factor=2.5,
                                   spike_prob=0.2,
                                   spike_us=(1 * MS, 9 * MS)),),
        read_errors=(ReadErrors(rate=0.02, node=2),),
        false_negative_rate=0.01, false_positive_rate=0.03,
        rpc_timeout_us=90 * MS, op_budget_us=3 * SEC, max_attempts=6,
        track_health=False,
    )


def test_round_trip_is_lossless():
    spec = _full_spec()
    assert FaultSpec.from_json(spec.to_json()) == spec


def test_round_trip_restores_tuple_types():
    spec = FaultSpec.from_json(_full_spec().to_json())
    assert isinstance(spec.crashes, tuple)
    assert isinstance(spec.device_storms[0].spike_us, tuple)


def test_json_form_is_canonical():
    text = _full_spec().to_json()
    data = json.loads(text)
    assert list(data) == sorted(data)  # sort_keys: stable for diffs
    assert text == _full_spec().to_json()


def test_empty_spec_round_trips():
    assert FaultSpec.from_json(FaultSpec().to_json()) == FaultSpec()


def test_unknown_top_level_field_rejected():
    with pytest.raises(ValueError, match="unknown FaultSpec field"):
        FaultSpec.from_dict({"gremlins": []})


def test_unknown_member_field_rejected():
    with pytest.raises(ValueError, match="unknown CrashWindow field"):
        FaultSpec.from_dict(
            {"crashes": [{"node": 1, "start_us": 0.0, "blast_radius": 3}]})


def test_from_dict_validates():
    with pytest.raises(ValueError, match="rate out of range"):
        FaultSpec.from_dict({"message_loss": [{"rate": 1.5}]})


def test_load_reads_a_committed_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(_full_spec().to_json(), encoding="utf-8")
    assert FaultSpec.load(path) == _full_spec()


def test_cli_runs_slosweep_from_a_faults_file(tmp_path, capsys):
    spec = FaultSpec(message_loss=(MessageLoss(rate=0.05),),
                     rpc_timeout_us=80 * MS, op_budget_us=500 * MS,
                     max_attempts=4)
    path = tmp_path / "plan.json"
    path.write_text(spec.to_json(), encoding="utf-8")
    rc = experiments_main(["slosweep", "--faults", str(path), "--seed", "7"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "custom" in out  # the loaded plan replaced the grid cells
    assert "adaptive" in out


def test_cli_rejects_faults_for_experiments_without_the_parameter(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(FaultSpec().to_json(), encoding="utf-8")
    with pytest.raises(SystemExit):
        experiments_main(["table1", "--faults", str(path)])
