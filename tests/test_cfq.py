"""Tests of the CFQ scheduler."""

from repro._units import GB, KB
from repro.devices import BlockRequest, Disk, DiskParams, IoClass, IoOp
from repro.kernel import CfqScheduler
from repro.kernel.cfq import priority_quantum


def _quiet_disk(sim, depth=1):
    return Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=depth))


def _req(offset, pid=1, ioclass=IoClass.BE, priority=4):
    return BlockRequest(IoOp.READ, offset, 4 * KB, pid=pid,
                        ioclass=ioclass, priority=priority)


def _tracked(sched, reqs):
    order = []
    for i, req in enumerate(reqs):
        req.add_callback(lambda r, i=i: order.append(i))
        sched.submit(req)
    return order


def test_priority_quantum_monotone():
    quanta = [priority_quantum(p) for p in range(8)]
    assert quanta == sorted(quanta, reverse=True)
    assert quanta[0] > quanta[7] >= 1


def test_realtime_class_served_first(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    # Fill the device so everything below queues.
    sched.submit(_req(0))
    be = _req(1 * GB, pid=1, ioclass=IoClass.BE)
    rt = _req(2 * GB, pid=2, ioclass=IoClass.RT)
    idle = _req(3 * GB, pid=3, ioclass=IoClass.IDLE)
    order = _tracked(sched, [idle, be, rt])
    sim.run()
    assert order == [2, 1, 0]  # RT, then BE, then Idle


def test_process_queue_sorted_by_offset(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    reqs = [_req(5 * GB), _req(1 * GB), _req(3 * GB)]
    order = _tracked(sched, reqs)
    sim.run()
    assert order == [1, 2, 0]


def test_round_robin_across_processes(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    # Two processes with equal priority: quanta alternate fairly.
    quantum = priority_quantum(4)
    reqs = []
    for pid in (1, 2):
        for k in range(quantum + 1):
            reqs.append(_req((10 * pid + k) * GB, pid=pid))
    completions = []
    for req in reqs:
        req.add_callback(lambda r: completions.append(r.pid))
        sched.submit(req)
    sim.run()
    # First `quantum` completions come from pid 1, then pid 2 gets a turn.
    assert completions[:quantum] == [1] * quantum
    assert 2 in completions[quantum:quantum + priority_quantum(4) + 1]


def test_requests_ahead_of_counts_cfq_policy(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    rt = _req(1 * GB, pid=9, ioclass=IoClass.RT)
    own_before = _req(2 * GB, pid=1)
    own_after = _req(9 * GB, pid=1)
    other = _req(3 * GB, pid=2)
    for req in (rt, own_before, own_after, other):
        sched.submit(req)
    probe = _req(5 * GB, pid=1)
    ahead = sched.requests_ahead_of(probe)
    assert rt in ahead          # higher class
    assert own_before in ahead  # smaller offset, same node
    assert own_after not in ahead
    assert other in ahead       # other node already in the rotation


def test_process_count(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    for pid in (1, 2, 3):
        sched.submit(_req(pid * GB, pid=pid))
    assert sched.process_count() == 3


def test_cancel_removes_from_node(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    victim = _req(1 * GB, pid=1)
    keeper = _req(2 * GB, pid=1)
    sched.submit(victim)
    sched.submit(keeper)
    assert sched.cancel(victim) is True
    sim.run()
    assert victim.cancelled
    assert keeper.complete_time is not None
    assert disk.completed == 2


def test_empty_node_removed_from_tree(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    req = _req(1 * GB, pid=5)
    sched.submit(req)
    sim.run()
    assert sched.process_count() == 0
    assert sched.queued == 0


def test_idle_class_starves_behind_best_effort(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    idle = _req(1 * GB, pid=8, ioclass=IoClass.IDLE)
    completions = []
    idle.add_callback(lambda r: completions.append("idle"))
    sched.submit(idle)
    for k in range(4):
        req = _req((2 + k) * GB, pid=1)
        req.add_callback(lambda r: completions.append("be"))
        sched.submit(req)
    sim.run()
    assert completions[-1] == "idle"
