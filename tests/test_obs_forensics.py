"""Tail forensics: planted-cause attribution, blame accounting, diffs."""

import json

import pytest

from repro._units import MS
from repro.experiments.common import (build_disk_cluster, make_strategy,
                                      run_clients)
from repro.faults import DeviceStorm, FaultPlane, FaultSpec, MessageLoss
from repro.metrics.blame import (BLAME_CLIENT_OTHER, BLAME_DEVICE_QUEUEING,
                                 BLAME_DEVICE_STORM, BLAME_NETWORK_LOSS,
                                 BLAME_ORDER, BLAME_PREDICTOR_MISS,
                                 BlameShare, blame_key)
from repro.obs.bus import TraceRecorder
from repro.obs.events import (FAULT, FORENSICS_BLAME, IO_COMPLETE, RPC_DROP,
                              SPAN_OP, SPAN_REQUEST, VERDICT, TraceEvent)
from repro.obs.forensics import (BlameDiff, RequestBlame, TailForensics,
                                 diff_reports)
from repro.obs.schema import validate_event
from repro.obs.spans import SPAN_SUM_TOLERANCE_US
from repro.sim import Simulator


def _traced(scenario, seed=7):
    rec = TraceRecorder()
    sim = Simulator(seed=seed, recorder=rec)
    scenario(sim)
    return rec.events


def _loss_scenario(sim):
    """mittos line under a 100%-loss window: every RPC inside the window
    is dropped, so affected ops accumulate timeout-wait + backoff."""
    spec = FaultSpec(
        message_loss=(MessageLoss(rate=1.0, start_us=40 * MS,
                                  duration_us=60 * MS),),
        rpc_timeout_us=15 * MS, op_budget_us=300 * MS, max_attempts=6)
    plane = FaultPlane(sim, spec)
    env = build_disk_cluster(sim, 4, fault_injector=plane.decision_injector)
    plane.arm(env.cluster)
    strategy = make_strategy("mittos", env.cluster, deadline_us=25 * MS)
    run_clients(env, strategy, n_clients=3, n_ops=25, think_time_us=2 * MS,
                name="mittos", limit_us=400 * MS, stagger_us=17.0)


def _storm_scenario(sim):
    """base line (no failover) under a hard device storm: server time of
    ops landing in the window is inflated by the stormed device."""
    spec = FaultSpec(
        device_storms=(DeviceStorm(node=0, start_us=50 * MS,
                                   duration_us=150 * MS, factor=8.0,
                                   spike_prob=0.3),))
    plane = FaultPlane(sim, spec)
    env = build_disk_cluster(sim, 3, fault_injector=plane.decision_injector)
    plane.arm(env.cluster)
    strategy = make_strategy("base", env.cluster)
    run_clients(env, strategy, n_clients=3, n_ops=25, think_time_us=2 * MS,
                name="base", limit_us=400 * MS, stagger_us=17.0)


@pytest.fixture(scope="module")
def loss_events():
    return _traced(_loss_scenario)


@pytest.fixture(scope="module")
def storm_events():
    return _traced(_storm_scenario)


@pytest.fixture(scope="module")
def tails_events():
    from repro.experiments.faultsweep import tails_scenario
    return _traced(tails_scenario)


@pytest.fixture(scope="module")
def fig3_events():
    from repro.experiments.fig3 import replay_scenario
    return _traced(replay_scenario)


# -- planted-cause attribution ----------------------------------------------
def test_loss_window_blamed_on_network_loss(loss_events):
    report = TailForensics.from_events(loss_events).report(pct=95)
    assert report.flagged, "100%-loss window produced no tail"
    worst = report.flagged[0]
    assert worst.blame == BLAME_NETWORK_LOSS
    refs = worst.evidence[BLAME_NETWORK_LOSS]
    assert refs, "dominant blame carries no evidence"
    assert any(RPC_DROP in ref for ref in refs)
    # Every cited drop instant lies inside the planted 40..100ms window.
    for ref in refs:
        t = float(ref.split()[0].split("=")[1])
        assert 40 * MS <= t <= 100 * MS, ref


def test_storm_window_blamed_on_device_storm(storm_events):
    report = TailForensics.from_events(storm_events).report(pct=95)
    assert report.flagged, "device storm produced no tail"
    stormed = [b for b in report.flagged if b.blame == BLAME_DEVICE_STORM]
    assert stormed, [b.blame for b in report.flagged]
    for blamed in stormed:
        (ref,) = blamed.evidence[BLAME_DEVICE_STORM]
        assert "storm-on" in ref and FAULT in ref
        t = float(ref.split()[0].split("=")[1])
        assert 50 * MS <= t <= 200 * MS, ref


def test_faulted_chaos_covers_multiple_classes(tails_events):
    """The registered tails scenario plants three disjoint causes; a p90
    slice must attribute at least three distinct blame classes."""
    report = TailForensics.from_events(tails_events).report(pct=90)
    assert len({b.blame for b in report.flagged}) >= 3


# -- blame accounting identities --------------------------------------------
@pytest.mark.parametrize("fixture", ["fig3_events", "tails_events"])
def test_charged_us_sum_to_end_to_end_latency(fixture, request):
    events = request.getfixturevalue(fixture)
    report = TailForensics.from_events(events).report(pct=50)
    assert report.flagged
    for blamed in report.flagged:
        charged = sum(blamed.charged.values())
        assert abs(charged - blamed.total) <= SPAN_SUM_TOLERANCE_US, \
            (blamed, charged)


@pytest.mark.parametrize("fixture", ["fig3_events", "tails_events"])
def test_per_class_us_sum_to_tail_mass(fixture, request):
    events = request.getfixturevalue(fixture)
    report = TailForensics.from_events(events).report(pct=50)
    by_class = sum(report.share.charged_us.values())
    assert abs(by_class - report.tail_mass_us) <= \
        SPAN_SUM_TOLERANCE_US * max(1, len(report.flagged))
    assert report.tail_mass_us == pytest.approx(
        sum(b.total for b in report.flagged))


# -- determinism -------------------------------------------------------------
def test_same_seed_reports_are_byte_identical():
    def one():
        events = _traced(_loss_scenario, seed=11)
        return TailForensics.from_events(events).report().to_json()
    assert one() == one()


def test_forensics_is_post_hoc(loss_events):
    """Running forensics must not touch the trace it analyzes."""
    before = [ev.to_json() for ev in loss_events]
    TailForensics.from_events(loss_events).report(pct=50)
    assert [ev.to_json() for ev in loss_events] == before


# -- report shape -------------------------------------------------------------
def test_threshold_modes(loss_events):
    eng = TailForensics.from_events(loss_events)
    absolute = eng.report(threshold_us=5 * MS)
    assert absolute.mode == "absolute"
    assert all(b.total > 5 * MS for b in absolute.flagged)
    p90 = eng.report(pct=90)
    assert p90.mode == "p90"
    default = eng.report()
    assert default.mode == "p99"
    # Worst-first ordering.
    totals = [b.total for b in p90.flagged]
    assert totals == sorted(totals, reverse=True)


def test_report_on_empty_trace():
    report = TailForensics.from_events([]).report()
    assert report.spans == 0 and not report.flagged
    assert report.tail_mass_us == 0.0
    assert "(no spans above threshold)" in report.render()
    json.loads(report.to_json())  # still canonical JSON


def test_request_kind_used_when_no_op_spans():
    events = [TraceEvent(100.0, SPAN_REQUEST,
                         {"req": 1, "outcome": "ok", "total": 90.0,
                          "stages": {"scheduler-queue": 30.0,
                                     "device-service": 60.0}})]
    report = TailForensics.from_events(events).report(threshold_us=10.0)
    assert report.kind == "request"
    (blamed,) = report.flagged
    assert blamed.blame == BLAME_DEVICE_QUEUEING
    assert blamed.ident == {"req": 1}


def test_zero_valued_stages_are_skipped():
    events = [TraceEvent(100.0, SPAN_REQUEST,
                         {"req": 1, "outcome": "ok", "total": 50.0,
                          "stages": {"scheduler-queue": 0.0,
                                     "device-service": 50.0}})]
    report = TailForensics.from_events(events).report(threshold_us=1.0)
    (blamed,) = report.flagged
    assert [s for s, _, _ in blamed.stages] == ["device-service"]
    assert sum(blamed.charged.values()) == pytest.approx(50.0)


def test_unknown_stage_charges_client_other():
    events = [TraceEvent(10.0, SPAN_OP,
                         {"strategy": "x", "key": 1, "total": 10.0,
                          "outcome": "ok", "attempts": 1, "timeouts": 0,
                          "stages": {"mystery-stage": 10.0}})]
    report = TailForensics.from_events(events).report(threshold_us=1.0)
    assert report.flagged[0].blame == BLAME_CLIENT_OTHER


# -- context-index mechanics --------------------------------------------------
def test_open_fault_window_closes_at_end_of_trace():
    events = [
        TraceEvent(5.0, FAULT, {"kind": "crash", "node": 1, "epoch": 1}),
        TraceEvent(50.0, SPAN_OP,
                   {"strategy": "mittos", "key": 1, "total": 40.0,
                    "outcome": "ok", "attempts": 2, "timeouts": 1,
                    "stages": {"timeout-wait": 30.0, "server": 10.0}}),
    ]
    eng = TailForensics.from_events(events)
    ((start, end, note),) = eng.crash_windows
    assert (start, end) == (5.0, float("inf")) and "node=1" in note
    (blamed,) = eng.report(threshold_us=1.0).flagged
    # No drops recorded -> the wait is charged to the crash window.
    assert blamed.stages[0][2] == "failover-chain"
    assert "end-of-trace" in blamed.evidence["failover-chain"][0]


def test_fail_slow_window_pairs_on_factor_reset():
    events = [
        TraceEvent(10.0, FAULT, {"kind": "fail-slow", "node": 2,
                                 "cpu_factor": 4.0, "device_factor": 2.0}),
        TraceEvent(90.0, FAULT, {"kind": "fail-slow", "node": 2,
                                 "cpu_factor": 1.0, "device_factor": 1.0}),
    ]
    eng = TailForensics.from_events(events)
    ((start, end, note),) = eng.slow_windows
    assert (start, end) == (10.0, 90.0)
    assert "fail-slow node=2" in note


def test_false_accept_join_drives_predictor_miss():
    events = [
        TraceEvent(0.0, VERDICT, {"req": 7, "accept": True, "probe": False,
                                  "deadline": 20.0}),
        TraceEvent(100.0, IO_COMPLETE, {"req": 7, "latency": 100.0}),
        TraceEvent(100.0, SPAN_REQUEST,
                   {"req": 7, "outcome": "ok", "total": 100.0,
                    "stages": {"device-queue": 80.0,
                               "device-service": 20.0}}),
    ]
    eng = TailForensics.from_events(events)
    assert eng.false_accepts == [(0.0, 100.0, 7)]
    (blamed,) = eng.report(threshold_us=1.0).flagged
    assert blamed.blame == BLAME_PREDICTOR_MISS
    assert "false-accept req=7" in blamed.evidence[BLAME_PREDICTOR_MISS][0]


def test_on_time_accept_is_not_a_false_accept():
    events = [
        TraceEvent(0.0, VERDICT, {"req": 7, "accept": True, "probe": False,
                                  "deadline": 200.0}),
        TraceEvent(100.0, IO_COMPLETE, {"req": 7, "latency": 100.0}),
    ]
    assert TailForensics.from_events(events).false_accepts == []


def test_evidence_refs_are_capped():
    events = [TraceEvent(float(t), RPC_DROP,
                         {"src": 0, "dst": 1, "kind": "request"})
              for t in range(1, 11)]
    events.append(TraceEvent(20.0, SPAN_OP,
                             {"strategy": "mittos", "key": 1, "total": 19.0,
                              "outcome": "ok", "attempts": 3, "timeouts": 2,
                              "stages": {"timeout-wait": 19.0}}))
    (blamed,) = TailForensics.from_events(events).report(
        threshold_us=1.0).flagged
    refs = blamed.evidence[BLAME_NETWORK_LOSS]
    assert len(refs) == 3
    assert refs[-1].endswith("(+7 more)")


# -- derived events ----------------------------------------------------------
def test_to_events_validate_against_schema(tails_events):
    report = TailForensics.from_events(tails_events).report()
    derived = report.to_events()
    assert len(derived) == len(report.flagged)
    for ev, blamed in zip(derived, report.flagged):
        assert ev.topic == FORENSICS_BLAME
        assert ev.time == blamed.time
        validate_event(ev)  # raises SchemaViolation on drift


# -- BlameShare reducer -------------------------------------------------------
def test_blame_share_rows_and_dict():
    share = BlameShare()
    share.add(BLAME_NETWORK_LOSS, 100.0, {BLAME_NETWORK_LOSS: 80.0,
                                          BLAME_CLIENT_OTHER: 20.0})
    share.add(BLAME_NETWORK_LOSS, 50.0, {BLAME_NETWORK_LOSS: 50.0})
    assert share.total_us == 150.0
    assert share.counts == {BLAME_NETWORK_LOSS: 2}
    as_dict = share.to_dict()
    assert as_dict[BLAME_NETWORK_LOSS]["share"] == pytest.approx(130 / 150,
                                                                 abs=1e-6)
    rendered = share.render(title="t")
    assert BLAME_NETWORK_LOSS in rendered and BLAME_CLIENT_OTHER in rendered


def test_blame_key_orders_canonical_before_unknown():
    known = sorted(BLAME_ORDER, key=blame_key)
    assert known == list(BLAME_ORDER)
    assert blame_key("zzz-unknown") > blame_key(BLAME_ORDER[-1])


def test_dominant_tie_breaks_to_canonical_order():
    blamed = RequestBlame(
        "op", 10.0, 20.0, "ok", {"strategy": "x", "key": 1, "attempts": 1,
                                 "timeouts": 0},
        (), {BLAME_NETWORK_LOSS: 10.0, BLAME_DEVICE_QUEUEING: 10.0}, {})
    assert blamed.blame == BLAME_DEVICE_QUEUEING  # earlier in BLAME_ORDER


# -- cross-run diff -----------------------------------------------------------
def test_diff_reports_explains_regression(loss_events, storm_events):
    report_a = TailForensics.from_events(storm_events).report(pct=90)
    report_b = TailForensics.from_events(loss_events).report(pct=90)
    diff = diff_reports(report_a, report_b, label_a="storm", label_b="loss")
    assert isinstance(diff, BlameDiff)
    deltas = diff.class_deltas()
    assert deltas
    moves = [abs(us_b - us_a) for _, _, _, us_a, us_b in deltas]
    assert moves == sorted(moves, reverse=True)
    as_dict = diff.to_dict()
    assert as_dict["a"]["label"] == "storm"
    for row in as_dict["deltas"]:
        assert row["delta_us"] == pytest.approx(
            row["charged_us_b"] - row["charged_us_a"], abs=1e-3)
    rendered = diff.render()
    assert "p99:" in rendered and "A=storm" in rendered


def test_diff_of_empty_reports():
    empty = TailForensics.from_events([]).report()
    rendered = diff_reports(empty, empty).render()
    assert "(no flagged tail requests in either run)" in rendered


# -- CLI ----------------------------------------------------------------------
def _export(events, path):
    rec = TraceRecorder()
    rec.events.extend(events)
    rec.write_jsonl(path)


def test_tails_cli_on_trace(tmp_path, capsys, loss_events):
    from repro.obs.__main__ import main
    path = tmp_path / "loss.jsonl.gz"
    _export(loss_events, path)
    assert main(["tails", str(path), "--percentile", "90"]) == 0
    out = capsys.readouterr().out
    assert "tail forensics" in out and "Tail blame" in out


def test_tails_cli_json_mode(tmp_path, capsys, loss_events):
    from repro.obs.__main__ import main
    path = tmp_path / "loss.jsonl"
    _export(loss_events, path)
    assert main(["tails", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mode"] == "p99"
    assert payload["flagged"] == len(payload["requests"])


def test_tails_cli_scenario_mode(capsys):
    from repro.obs.__main__ import main
    assert main(["tails", "--scenario", "tails", "--percentile", "90",
                 "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert "scenario=tails seed=7" in out
    assert "exemplar timelines (top 1" in out


def test_tails_cli_against_diff(tmp_path, capsys, loss_events,
                                storm_events):
    from repro.obs.__main__ import main
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl.gz"
    _export(storm_events, path_a)
    _export(loss_events, path_b)
    assert main(["tails", str(path_a), "--against", str(path_b)]) == 0
    out = capsys.readouterr().out
    assert "tail blame diff" in out and "blame-class deltas" in out


def test_tails_cli_usage_errors(tmp_path, capsys):
    from repro.obs.__main__ import main
    assert main(["tails"]) == 2                      # neither input
    path = tmp_path / "t.jsonl"
    path.write_text('{"t":0.0,"topic":"io.submit","req":1}\n')
    assert main(["tails", str(path), "--scenario", "tails"]) == 2  # both
    assert main(["tails", "--scenario", "nope"]) == 2
    assert main(["tails", str(tmp_path / "absent.jsonl")]) == 1
    capsys.readouterr()


def test_experiments_tails_flag(capsys):
    from repro.experiments.__main__ import main
    assert main(["writes", "--seed", "3", "--tails"]) == 0
    out = capsys.readouterr().out
    assert "tail forensics" in out
