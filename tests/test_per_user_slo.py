"""Integration: per-user SLOs drive per-user failover behaviour (§5).

The paper's first MongoDB modification: "MongoDB can create one deadline
for every user, which can be modified anytime."  Two users share the same
cluster; the latency-critical one carries a tight deadline and fails over,
the batch user carries none and just waits.
"""

from repro._units import MS, SEC
from repro.experiments.common import build_disk_cluster, make_strategy
from repro.mittos import DeadlineSlo, SloRegistry


def test_two_users_one_cluster_different_behaviour(sim):
    env = build_disk_cluster(sim, 6)
    env.cluster.primary_fn = lambda key: 0
    env.injectors[0].busy_window(5 * SEC, concurrency=5)

    registry = SloRegistry()
    registry.set("interactive", DeadlineSlo.from_ms(15))
    # "batch" has no SLO: registry returns None -> no deadline, no EBUSY.

    strategies = {
        user: make_strategy("mittos", env.cluster,
                            deadline_us=registry.deadline_us(user))
        for user in ("interactive", "batch")
    }
    latencies = {}

    def client(user):
        start = sim.now
        yield strategies[user].get(1)
        latencies[user] = sim.now - start

    procs = [sim.process(client(u)) for u in ("interactive", "batch")]
    sim.run_until(sim.all_of(procs), limit=60 * SEC)

    assert strategies["interactive"].failovers >= 1
    assert strategies["batch"].failovers == 0
    assert latencies["interactive"] < 25 * MS
    assert latencies["batch"] > 25 * MS  # waited out the contention


def test_slo_update_takes_effect_mid_run(sim):
    """'...which can be modified anytime': tighten the deadline online."""
    env = build_disk_cluster(sim, 6)
    env.cluster.primary_fn = lambda key: 0
    registry = SloRegistry()
    registry.set("u", DeadlineSlo.from_ms(500))  # effectively no limit
    strategy = make_strategy("mittos", env.cluster,
                             deadline_us=registry.deadline_us("u"))

    def phase_one():
        yield strategy.get(1)

    proc = sim.process(phase_one())
    sim.run_until(proc, limit=30 * SEC)
    assert strategy.failovers == 0

    # The operator tightens the SLO; the strategy picks it up.
    registry.set("u", DeadlineSlo.from_ms(10))
    strategy.deadline_us = registry.deadline_us("u")
    env.injectors[0].busy_window(5 * SEC, concurrency=5)
    sim.run(until=sim.now + 100 * MS)

    def phase_two():
        yield strategy.get(1)

    proc = sim.process(phase_two())
    sim.run_until(proc, limit=60 * SEC)
    assert strategy.failovers >= 1
