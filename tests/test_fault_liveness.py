"""Liveness under total failure: no strategy may hang, ever.

The acceptance bar for the fault plane: with 100% message loss, or with
every replica crash-stopped, each strategy's ``get()`` must still
terminate — with ``EIO`` — in bounded simulated time, because the armed
plane installs per-attempt RPC timeouts, a per-op budget, and an attempt
cap on the cluster.
"""

import pytest

from repro._units import MS, SEC
from repro.cluster.strategies import STRATEGIES
from repro.errors import EIO
from repro.experiments.common import build_disk_cluster, make_strategy
from repro.faults import CrashWindow, FaultPlane, FaultSpec

#: Tight budget so the whole matrix stays cheap.
KNOBS = dict(rpc_timeout_us=50 * MS, op_budget_us=1 * SEC, max_attempts=6)
LIMIT = 30 * SEC


def _armed_env(sim, spec):
    env = build_disk_cluster(sim, 4)
    FaultPlane(sim, spec).arm(env.cluster)
    return env


def _strategy(name, cluster):
    return make_strategy(name, cluster, deadline_us=15 * MS)


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_total_message_loss_yields_eio_in_bounded_time(sim, name):
    from repro.faults import MessageLoss
    spec = FaultSpec(message_loss=(MessageLoss(rate=1.0),), **KNOBS)
    env = _armed_env(sim, spec)
    strategy = _strategy(name, env.cluster)
    ev = strategy.get(1)
    assert sim.run_until(ev, limit=LIMIT), f"{name} hung under 100% loss"
    assert ev.value is EIO
    assert sim.now < 10 * SEC  # budget + backoff, not the 30 s horizon


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_all_replicas_crashed_yields_eio_in_bounded_time(sim, name):
    spec = FaultSpec(
        crashes=tuple(CrashWindow(node=i, start_us=0.0) for i in range(4)),
        **KNOBS)
    env = _armed_env(sim, spec)
    strategy = _strategy(name, env.cluster)
    ev = strategy.get(1)
    assert sim.run_until(ev, limit=LIMIT), f"{name} hung on a dead cluster"
    assert ev.value is EIO
    assert sim.now < 10 * SEC


def test_mittos_survives_single_crash_without_user_errors(sim):
    """One dead replica out of four: EBUSY/timeout failover still delivers
    data — the paper's no-user-visible-errors property under faults."""
    spec = FaultSpec(crashes=(CrashWindow(node=0, start_us=0.0),), **KNOBS)
    env = _armed_env(sim, spec)
    strategy = _strategy("mittos", env.cluster)

    def client():
        results = []
        for key in range(10):
            results.append((yield strategy.get(key)))
        return results

    proc = sim.process(client())
    assert sim.run_until(proc, limit=LIMIT)
    assert all(value is not EIO for value in proc.value)
