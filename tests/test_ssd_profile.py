"""Tests of SSD profiling."""

import pytest

from repro._units import KB, MS
from repro.devices import Ssd, SsdGeometry
from repro.devices.ssd_profile import SsdLatencyModel, profile_ssd


def test_from_spec_copies_constants():
    model = SsdLatencyModel.from_spec(SsdGeometry())
    assert model.page_read_us == 100.0
    assert model.channel_xfer_us == 60.0
    assert model.erase_us == 6 * MS
    assert len(model.program_us) == 512


def test_profile_measures_read_time():
    model = profile_ssd(lambda sim: Ssd(sim, SsdGeometry(jitter_frac=0.0)))
    assert model.page_read_us == pytest.approx(100.0, rel=0.02)


def test_profile_measures_channel_delay():
    model = profile_ssd(lambda sim: Ssd(sim, SsdGeometry(jitter_frac=0.0)))
    assert model.channel_xfer_us == pytest.approx(60.0, rel=0.1)


def test_min_read_latency_scales_with_pages():
    model = SsdLatencyModel.from_spec(SsdGeometry())
    assert model.min_read_latency(4 * KB) == 100.0
    assert model.min_read_latency(64 * KB) == 400.0


def test_ssd_profiling_preserves_caller_req_id_numbering():
    from repro.devices.request import req_id_watermark
    from repro.sim import Simulator

    Simulator(seed=3)
    assert req_id_watermark() == 0
    profile_ssd(lambda sim: Ssd(sim), probes_per_point=2)
    assert req_id_watermark() == 0
