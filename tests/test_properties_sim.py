"""Property-based tests of the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1,
                       max_size=50))
def test_callbacks_run_in_nondecreasing_time_order(delays):
    sim = Simulator(seed=0)
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1,
                       max_size=30),
       cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30))
def test_cancelled_callbacks_never_run(delays, cancel_mask):
    sim = Simulator(seed=0)
    fired = []
    handles = []
    for i, d in enumerate(delays):
        handles.append(sim.schedule(d, lambda i=i: fired.append(i)))
    cancelled = set()
    for i, (h, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            h.cancel()
            cancelled.add(i)
    sim.run()
    assert set(fired).isdisjoint(cancelled)
    assert len(fired) == len(delays) - len(set(fired) & set()) - len(
        [i for i in cancelled if i < len(delays)])


@given(values=st.lists(st.integers(), min_size=1, max_size=20))
def test_all_of_preserves_order_and_values(values):
    sim = Simulator(seed=0)
    rng = sim.rng("shuffle")
    events = [sim.timeout(rng.uniform(0, 100), value=v) for v in values]
    combo = sim.all_of(events)
    sim.run()
    assert combo.value == values


@given(delays=st.lists(st.floats(min_value=0.1, max_value=100.0),
                       min_size=1, max_size=20))
def test_any_of_returns_earliest(delays):
    sim = Simulator(seed=0)
    events = [sim.timeout(d, value=i) for i, d in enumerate(delays)]
    combo = sim.any_of(events)
    sim.run()
    idx, value = combo.value
    assert idx == value
    assert delays[idx] == min(delays)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25)
def test_replay_determinism_for_any_seed(seed):
    def trace(s):
        sim = Simulator(seed=s)
        log = []

        def proc():
            rng = sim.rng("p")
            for _ in range(10):
                yield sim.timeout(rng.uniform(0, 10))
                log.append(sim.now)

        sim.process(proc())
        sim.run()
        return log

    assert trace(seed) == trace(seed)


@given(ops=st.lists(st.sampled_from(["acquire", "release"]), min_size=1,
                    max_size=60),
       slots=st.integers(min_value=1, max_value=8))
def test_semaphore_invariants(ops, slots):
    from repro.sim.resources import Semaphore
    sim = Simulator(seed=0)
    sem = Semaphore(sim, slots)
    held = 0
    for op in ops:
        if op == "acquire":
            sem.acquire()
            held += 1
        elif held > 0 and sem.in_use > 0:
            sem.release()
            held -= 1
        assert 0 <= sem.in_use <= slots
        assert sem.queued == max(0, held - slots)
