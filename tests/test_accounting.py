"""Tests of FP/FN accuracy accounting (§7.6)."""

from repro.devices.request import BlockRequest, IoOp
from repro.mittos import AccuracyTracker


def _completed_req(submit, deadline, complete, rejected,
                   predicted=(0.0, 0.0)):
    req = BlockRequest(IoOp.READ, 0, 4096)
    req.submit_time = submit
    req.abs_deadline = submit + deadline
    req.predicted_wait, req.predicted_service = predicted
    tracker_input = req
    tracker_input.tag["accuracy_rejected"] = rejected
    req.complete_time = complete
    return req


def test_true_positive_counts_correct():
    tracker = AccuracyTracker()
    req = _completed_req(0.0, 100.0, 500.0, rejected=True)
    tracker.observe_completion(req)
    assert tracker.correct == 1
    assert tracker.inaccuracy == 0.0


def test_false_positive():
    tracker = AccuracyTracker()
    req = _completed_req(0.0, 100.0, 50.0, rejected=True,
                         predicted=(200.0, 100.0))
    tracker.observe_completion(req)
    assert tracker.false_positives == 1
    assert tracker.fp_rate == 1.0
    # diff recorded: |50 - (0 + 200 + 100)| = 250
    assert tracker.error_diffs == [250.0]


def test_false_negative():
    tracker = AccuracyTracker()
    req = _completed_req(0.0, 100.0, 500.0, rejected=False,
                         predicted=(10.0, 20.0))
    tracker.observe_completion(req)
    assert tracker.false_negatives == 1
    assert tracker.fn_rate == 1.0


def test_ignores_requests_without_deadline():
    tracker = AccuracyTracker()
    req = BlockRequest(IoOp.READ, 0, 4096)
    req.tag["accuracy_rejected"] = False
    req.submit_time, req.complete_time = 0.0, 10.0
    tracker.observe_completion(req)
    assert tracker.total == 0


def test_ignores_cancelled_requests():
    tracker = AccuracyTracker()
    req = _completed_req(0.0, 100.0, 500.0, rejected=True)
    req.cancelled = True
    tracker.observe_completion(req)
    assert tracker.total == 0


def test_summary_and_diff_stats():
    tracker = AccuracyTracker()
    tracker.observe_completion(
        _completed_req(0.0, 100.0, 50.0, True, predicted=(150.0, 50.0)))
    tracker.observe_completion(
        _completed_req(0.0, 100.0, 150.0, False, predicted=(10.0, 20.0)))
    tracker.observe_completion(
        _completed_req(0.0, 100.0, 80.0, False))
    summary = tracker.summary()
    assert summary["total"] == 3
    assert summary["fp_rate"] == 1 / 3
    assert summary["fn_rate"] == 1 / 3
    assert tracker.mean_diff_us() > 0
    assert tracker.max_diff_us() >= tracker.mean_diff_us()


def test_rates_zero_when_empty():
    tracker = AccuracyTracker()
    assert tracker.fp_rate == 0.0
    assert tracker.fn_rate == 0.0
    assert tracker.mean_diff_us() == 0.0
