from repro.metrics.tables import format_table


def test_columns_are_padded_and_aligned():
    out = format_table(["name", "v"], [["a", 1], ["longer", 22]])
    lines = out.splitlines()
    assert len({line.index("1") if "1" in line else None
                for line in lines[2:]} - {None}) == 1
    assert lines[0].startswith("name")
    assert "-" in lines[1]


def test_floats_rendered_with_two_decimals():
    out = format_table(["x"], [[3.14159]])
    assert "3.14" in out
    assert "3.142" not in out


def test_title_prepended():
    out = format_table(["a"], [[1]], title="Table X")
    assert out.splitlines()[0] == "Table X"


def test_empty_rows_ok():
    out = format_table(["a", "b"], [])
    assert "a" in out and "b" in out
