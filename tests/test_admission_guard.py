"""Tests of per-node admission backpressure (tiered shedding)."""

import pytest

from repro._units import MS
from repro.devices.request import IoClass
from repro.errors import is_ebusy
from repro.experiments.common import build_disk_cluster, make_strategy
from repro.slo_control import SHEDDABLE_TIER, AdmissionGuard, work_tier


def test_work_tier_mapping():
    assert work_tier(IoClass.RT, 0) == 0
    assert work_tier(IoClass.RT, 7) == 0   # RT outranks its priority field
    assert work_tier(IoClass.IDLE, 0) == 8
    assert work_tier(IoClass.BE, 4) == 4
    assert work_tier(IoClass.BE, 7) == 7
    assert work_tier(IoClass.BE, 99) == 7  # clamped into the CFQ range


def test_levels_shed_lowest_tier_first(sim):
    guard = AdmissionGuard(sim, node_id=0, max_level=4)
    assert guard.admit(1, IoClass.IDLE, 0)       # level 0: nothing shed
    guard.set_level(1)
    assert not guard.admit(1, IoClass.IDLE, 0)   # tier 8 goes first
    assert guard.admit(1, IoClass.BE, 7)
    guard.set_level(4)
    assert not guard.admit(1, IoClass.BE, 7)
    assert not guard.admit(1, IoClass.BE, 5)
    assert guard.admit(1, IoClass.BE, 4)         # serving tier survives
    assert guard.admit(1, IoClass.RT, 0)         # RT is never shed
    assert guard.admitted == 4
    assert guard.shed == 3


def test_level_clamped_to_max_level(sim):
    guard = AdmissionGuard(sim, node_id=0, max_level=2)
    guard.set_level(99)
    assert guard.level == 2
    assert guard.admit(1, IoClass.BE, 6)         # tier 6 < threshold 7
    assert not guard.admit(1, IoClass.BE, 7)
    guard.set_level(-3)
    assert guard.level == 0


class _FakeSched:
    def __init__(self, queued):
        self.queued = queued


class _FakeOs:
    def __init__(self, queued):
        self.scheduler = _FakeSched(queued)
        self.admission = None


def test_qdepth_limit_sheds_sheddable_tiers_only(sim):
    guard = AdmissionGuard(sim, node_id=0, qdepth_limit=8)
    guard.attach(_FakeOs(queued=9))
    assert guard.queue_depth() == 9
    assert not guard.admit(1, IoClass.IDLE, 0)            # tier 8
    assert not guard.admit(1, IoClass.BE, SHEDDABLE_TIER)  # tier 5
    assert guard.admit(1, IoClass.BE, 4)   # foreground rides it out
    assert guard.admit(1, IoClass.RT, 0)
    guard._os.scheduler.queued = 3         # queue drained
    assert guard.admit(1, IoClass.IDLE, 0)


def test_shed_read_returns_ebusy_on_the_os_path(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    guard = AdmissionGuard(sim, node.node_id).attach(node.os)
    assert node.os.admission is guard
    guard.set_level(2)  # sheds tiers >= 7
    shed_ev = node.get(3, deadline=20 * MS, priority=7)
    kept_ev = node.get(4, deadline=20 * MS, priority=4)
    sim.run()
    assert is_ebusy(shed_ev.value)
    assert not is_ebusy(kept_ev.value)
    assert guard.shed == 1
    assert guard.admitted == 1
    assert node.os.ebusy_returned >= 1  # shed counts as a fast reject


def test_low_tier_strategy_reads_are_shed_cluster_wide(sim):
    env = build_disk_cluster(sim, 3)
    guards = []
    for node in env.nodes:
        guard = AdmissionGuard(sim, node.node_id).attach(node.os)
        guard.set_level(2)
        guards.append(guard)
    scavenger = make_strategy("base", env.cluster, tier_priority=7)
    ev = scavenger.get(11)
    sim.run()
    # Base has no EBUSY failover: the shed comes back as the op result.
    assert is_ebusy(ev.value)
    assert sum(g.shed for g in guards) == 1


def test_default_priority_reads_unaffected_by_unlevelled_guard(sim):
    env = build_disk_cluster(sim, 3)
    for node in env.nodes:
        AdmissionGuard(sim, node.node_id).attach(node.os)
    strategy = make_strategy("mittos", env.cluster, deadline_us=40 * MS)
    ev = strategy.get(5)
    sim.run()
    assert not is_ebusy(ev.value)
    assert ev.value is not None
