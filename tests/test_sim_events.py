"""Tests of events and combinators."""

import pytest

from repro.errors import SimulationError


def test_event_lifecycle(sim):
    ev = sim.event()
    assert not ev.triggered
    ev.succeed(5)
    assert ev.triggered and ev.ok and ev.value == 5


def test_event_value_before_trigger_raises(sim):
    with pytest.raises(SimulationError):
        sim.event().value


def test_double_trigger_raises(sim):
    ev = sim.event().succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_try_succeed_is_idempotent(sim):
    ev = sim.event()
    ev.try_succeed(1)
    ev.try_succeed(2)
    assert ev.value == 1


def test_fail_requires_exception(sim):
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_failed_event_value_reraises(sim):
    ev = sim.event()
    ev.add_callback(lambda e: None)  # someone is listening
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError):
        ev.value


def test_callback_after_trigger_runs_immediately(sim):
    ev = sim.event().succeed("v")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_callbacks_run_in_registration_order(sim):
    ev = sim.event()
    order = []
    for i in range(5):
        ev.add_callback(lambda e, i=i: order.append(i))
    ev.succeed()
    assert order == [0, 1, 2, 3, 4]


def test_all_of_collects_values_in_order(sim):
    events = [sim.timeout(30, "a"), sim.timeout(10, "b"),
              sim.timeout(20, "c")]
    combo = sim.all_of(events)
    sim.run()
    assert combo.value == ["a", "b", "c"]


def test_all_of_empty_succeeds_immediately(sim):
    assert sim.all_of([]).value == []


def test_all_of_fails_fast(sim):
    bad = sim.event()
    combo = sim.all_of([sim.timeout(100), bad])
    combo.add_callback(lambda e: None)
    bad.fail(ValueError("x"))
    assert combo.triggered and not combo.ok


def test_any_of_returns_first_with_index(sim):
    events = [sim.timeout(30, "slow"), sim.timeout(10, "fast")]
    combo = sim.any_of(events)
    sim.run()
    assert combo.value == (1, "fast")


def test_any_of_empty_raises(sim):
    with pytest.raises(ValueError):
        sim.any_of([])


def test_any_of_fails_only_when_all_fail(sim):
    a, b = sim.event(), sim.event()
    combo = sim.any_of([a, b])
    combo.add_callback(lambda e: None)
    a.fail(ValueError("a"))
    assert not combo.triggered
    b.fail(ValueError("b"))
    assert combo.triggered and not combo.ok


def test_any_of_after_one_done_ignores_later(sim):
    a, b = sim.timeout(5, "a"), sim.timeout(6, "b")
    combo = sim.any_of([a, b])
    sim.run()
    assert combo.value == (0, "a")
    assert b.triggered  # the loser still completed harmlessly
