"""Tests of the LRU page cache."""

import pytest

from repro.kernel import PageCache


def test_requires_positive_capacity(sim):
    with pytest.raises(ValueError):
        PageCache(sim, 0)


def test_pages_of_spans_boundaries(sim):
    cache = PageCache(sim, 10)
    assert list(cache.pages_of(0, 4096)) == [0]
    assert list(cache.pages_of(4095, 2)) == [0, 1]
    assert list(cache.pages_of(8192, 8192)) == [2, 3]


def test_insert_then_resident(sim):
    cache = PageCache(sim, 10)
    cache.insert(1, 0, 8192)
    assert cache.resident(1, 0, 8192)
    assert not cache.resident(1, 8192, 4096)
    assert not cache.resident(2, 0, 4096)  # different file


def test_touch_hit_and_miss_counters(sim):
    cache = PageCache(sim, 10)
    cache.insert(1, 0, 4096)
    assert cache.touch(1, 0, 4096) is True
    assert cache.touch(1, 4096, 4096) is False
    assert cache.hits == 1
    assert cache.misses == 1


def test_partial_residency_is_a_miss(sim):
    cache = PageCache(sim, 10)
    cache.insert(1, 0, 4096)
    assert cache.touch(1, 0, 8192) is False


def test_lru_eviction_order(sim):
    cache = PageCache(sim, 2)
    cache.insert(1, 0, 4096)        # page 0
    cache.insert(1, 4096, 4096)     # page 1
    cache.touch(1, 0, 4096)         # page 0 now most recent
    cache.insert(1, 8192, 4096)     # page 2 evicts page 1
    assert cache.resident(1, 0, 4096)
    assert not cache.resident(1, 4096, 4096)
    assert cache.evictions == 1


def test_evict_fraction(sim):
    import random
    cache = PageCache(sim, 100)
    for p in range(100):
        cache.insert(1, p * 4096, 4096)
    evicted = cache.evict_fraction(0.2, random.Random(1))
    assert evicted == 20
    assert cache.used_pages == 80


def test_evict_fraction_validates(sim):
    import random
    with pytest.raises(ValueError):
        PageCache(sim, 10).evict_fraction(1.5, random.Random(1))


def test_evict_file_range(sim):
    cache = PageCache(sim, 100)
    cache.insert(1, 0, 16384)
    count = cache.evict_file_range(1, 0, 8192)
    assert count == 2
    assert not cache.resident(1, 0, 8192)
    assert cache.resident(1, 8192, 8192)


def test_background_swapin_repopulates(sim):
    cache = PageCache(sim, 100)
    cache.note_ebusy_swapin(1, 0, 4096)
    assert cache.resident(1, 0, 4096)
    assert cache.background_swapins == 1


def test_missing_pages_listing(sim):
    cache = PageCache(sim, 100)
    cache.insert(1, 0, 4096)
    assert cache.missing_pages(1, 0, 12288) == [1, 2]
