"""Edge-case tests across modules (failure paths, boundaries, wrap-arounds)."""

import pytest

from repro._units import GB, KB, MB, MS
from repro.devices import BlockRequest, Disk, DiskParams, IoClass, IoOp
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, NoopScheduler, OS
from repro.kernel.syscall import OsParams


def _os(sim, **kw):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    return OS(sim, disk, CfqScheduler(sim, disk), **kw)


def test_flusher_wraps_offset_without_error(sim):
    os_ = _os(sim, params=OsParams(flush_threshold_bytes=1 * MB,
                                   flush_chunk_bytes=1 * MB))
    os_._flush_offset = (1 << 38) - 512 * KB  # near the wrap point

    def gen():
        yield os_.write(0, 0, 2 * MB)

    proc = sim.process(gen())
    sim.run()
    assert proc.ok
    assert os_._flush_offset < (1 << 38)


def test_flusher_drains_all_dirty_bytes(sim):
    os_ = _os(sim, params=OsParams(flush_threshold_bytes=1 * MB,
                                   flush_chunk_bytes=512 * KB))

    def gen():
        for _ in range(4):
            yield os_.write(0, 0, 1 * MB)

    sim.process(gen())
    sim.run()
    assert os_._dirty_bytes == 0
    assert not os_._flusher_running


def test_probe_only_admission_reserves_nothing(sim):
    from repro.devices.disk_profile import profile_disk
    from repro.mittos import MittCfq
    model = profile_disk(lambda s: Disk(s, DiskParams(
        jitter_frac=0.0, hiccup_prob=0.0)))
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    predictor = MittCfq(model)
    OS(sim, disk, CfqScheduler(sim, disk), predictor=predictor)
    req = BlockRequest(IoOp.READ, 10 * GB, 4 * KB)
    req.abs_deadline = sim.now + 50 * MS
    predictor.admit(req, 50 * MS, probe_only=True)
    assert not predictor._ledger  # no tolerable-time entry reserved


def test_zero_size_request_rejected():
    with pytest.raises(ValueError):
        BlockRequest(IoOp.READ, 0, 0)


def test_read_result_repr():
    from repro.kernel.syscall import ReadResult
    assert "cache" in repr(ReadResult(True, 12.0))
    assert "device" in repr(ReadResult(False, 12.0))


def test_verdict_repr_and_total():
    from repro.mittos import Verdict
    verdict = Verdict(False, 100.0, 50.0)
    assert verdict.predicted_total == 150.0
    assert "EBUSY" in repr(verdict)


def test_network_minimum_latency_floor(sim):
    from repro.cluster import Network
    net = Network(sim, hop_us=1.0, jitter_us=100.0)
    assert all(net.hop_latency() >= 1.0 for _ in range(200))


def test_strategy_race_helper_cleans_up(sim):
    """AppTO abandoning a try must not corrupt later completions."""
    from repro.experiments.common import build_disk_cluster, make_strategy
    env = build_disk_cluster(sim, 6)
    env.injectors[0].busy_window(2_000_000, concurrency=5)
    env.cluster.primary_fn = lambda key: 0
    strategy = make_strategy("appto", env.cluster, deadline_us=10 * MS)
    results = []

    def client():
        for key in range(5):
            result = yield strategy.get(key)
            results.append(result)

    proc = sim.process(client())
    sim.run_until(proc, limit=60_000_000)
    assert len(results) == 5
    assert all(r is not None and not is_ebusy(r) for r in results)


def test_ebusy_is_fast_even_under_extreme_queueing(sim):
    """§3.3: syscall + EBUSY stays microseconds regardless of queue depth."""
    from repro.devices.disk_profile import profile_disk
    from repro.mittos import MittCfq
    model = profile_disk(lambda s: Disk(s, DiskParams(
        jitter_frac=0.0, hiccup_prob=0.0)))
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    os_ = OS(sim, disk, CfqScheduler(sim, disk),
             predictor=MittCfq(model))
    for i in range(100):
        os_.read(0, i * GB, 1024 * KB, pid=i % 10)

    def gen():
        start = sim.now
        result = yield os_.read(0, 500 * GB, 4 * KB, pid=1,
                                deadline=10 * MS)
        return result, sim.now - start

    proc = sim.process(gen())
    sim.run_until(proc)
    result, elapsed = proc.value
    assert is_ebusy(result)
    assert elapsed < 100.0  # microseconds, not a queue wait


def test_cancelled_request_excluded_from_estimates(sim):
    from repro.devices.disk_profile import profile_disk
    from repro.mittos import MittCfq
    model = profile_disk(lambda s: Disk(s, DiskParams(
        jitter_frac=0.0, hiccup_prob=0.0)))
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=1))
    sched = CfqScheduler(sim, disk)
    predictor = MittCfq(model)
    OS(sim, disk, sched, predictor=predictor)
    sched.submit(BlockRequest(IoOp.READ, 0, 4 * KB))
    big = BlockRequest(IoOp.READ, 100 * GB, 4096 * KB, pid=2)
    sched.submit(big)
    probe = BlockRequest(IoOp.READ, 200 * GB, 4 * KB, pid=3)
    wait_with, _ = predictor._estimate(probe)
    sched.cancel(big)
    wait_without, _ = predictor._estimate(probe)
    assert wait_without < wait_with


def test_noop_scheduler_on_ssd_passthrough(sim):
    from repro.devices import Ssd, SsdGeometry
    ssd = Ssd(sim, SsdGeometry(jitter_frac=0.0))
    sched = NoopScheduler(sim, ssd)
    for i in range(50):
        sched.submit(BlockRequest(IoOp.READ, i * 16 * KB, 16 * KB))
    assert sched.queued == 0  # the SSD absorbs everything immediately
    sim.run()
    assert ssd.completed == 50


def test_idle_class_request_eventually_served_alone(sim):
    os_ = _os(sim)

    def gen():
        result = yield os_.read(0, 10 * GB, 4 * KB,
                                ioclass=IoClass.IDLE, priority=7)
        return result

    proc = sim.process(gen())
    sim.run()
    assert proc.value.latency > 0
