"""Tests of the richer SLO forms (§8.1)."""

import pytest

from repro._units import KB, MB, MS
from repro.mittos import PercentileSlo, SloRegistry, ThroughputSlo


# -- throughput SLO --------------------------------------------------------

def test_throughput_validation():
    with pytest.raises(ValueError):
        ThroughputSlo(0)


def test_throughput_deadline_scales_with_size():
    slo = ThroughputSlo(10 * MB, base_us=1 * MS)  # 10 MB/s minimum
    small = slo.deadline_for(4 * KB)
    big = slo.deadline_for(4 * MB)
    assert small < big
    # 4 MB at 10 MB/s = 400 ms (+ base).
    assert big == pytest.approx(1 * MS + 400 * MS, rel=0.01)


def test_throughput_floor_for_sizeless_callers():
    slo = ThroughputSlo(10 * MB, base_us=2 * MS)
    assert slo.deadline_us == 2 * MS


# -- percentile SLO -----------------------------------------------------------

def test_percentile_validation():
    with pytest.raises(ValueError):
        PercentileSlo(pct=100)


def test_percentile_uses_initial_until_warm():
    slo = PercentileSlo(pct=95, initial_us=20 * MS)
    for _ in range(10):
        slo.observe(1 * MS)
    assert slo.deadline_us == 20 * MS  # fewer than 20 samples


def test_percentile_tracks_distribution():
    slo = PercentileSlo(pct=90, window=200)
    for i in range(1, 101):
        slo.observe(i * MS)
    assert slo.deadline_us == pytest.approx(91 * MS, rel=0.02)


def test_percentile_slides_with_the_workload():
    slo = PercentileSlo(pct=90, window=100)
    for _ in range(100):
        slo.observe(10 * MS)
    before = slo.deadline_us
    for _ in range(100):
        slo.observe(50 * MS)  # the workload got slower
    assert slo.deadline_us > before
    assert slo.deadline_us == pytest.approx(50 * MS, rel=0.01)


def test_percentile_window_is_bounded():
    slo = PercentileSlo(window=50)
    for i in range(500):
        slo.observe(float(i))
    assert len(slo._fifo) == 50
    assert len(slo._sorted) == 50


# -- registry accepts all forms ------------------------------------------------

def test_registry_accepts_rich_slos():
    registry = SloRegistry()
    registry.set("bulk", ThroughputSlo(50 * MB))
    registry.set("web", PercentileSlo(pct=95))
    assert registry.deadline_us("bulk") > 0
    assert registry.deadline_us("web") > 0


def test_registry_still_rejects_raw_numbers():
    with pytest.raises(TypeError):
        SloRegistry().set("u", 20.0)
