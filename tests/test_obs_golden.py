"""Golden regression pins: the bus refactor must be behavior-neutral.

The hashes and counters below were captured on the pre-refactor tree and
verified byte-identical after the refactor.  They pin three things:

* the paranoid event-loop hashes of the fig3 and chaos replay scenarios
  (the determinism contract: the bus added no events, callbacks, or RNG
  draws);
* a full counter set of a noisy 5-node MittOS cluster run — every legacy
  counter that became a bus-derived property must still read the same;
* the per-stream RNG draw counts of that run.

If a change here is *intentional* (a new event, a scheduling change),
recapture the values and say so in the commit message.
"""

from repro._units import MS, SEC
from repro.experiments.common import (apply_ec2_noise, build_disk_cluster,
                                      make_strategy, run_clients)
from repro.sim import Simulator
from repro.workloads import Ec2NoiseModel

FIG3_REPLAY_HASH = "da413acd65e8ca0927c159e7f822d98d"
CHAOS_REPLAY_HASH = "71459c76b51f11805bfdfb8801077031"


def test_fig3_replay_hash_unchanged():
    from repro.experiments.fig3 import replay_scenario
    sim = Simulator(seed=7, paranoid=True)
    replay_scenario(sim)
    assert sim.trace_hash() == FIG3_REPLAY_HASH


def test_chaos_replay_hash_unchanged():
    from repro.experiments.faultsweep import replay_scenario
    sim = Simulator(seed=7, paranoid=True)
    replay_scenario(sim)
    assert sim.trace_hash() == CHAOS_REPLAY_HASH


def test_noisy_cluster_counters_unchanged():
    """Seed-11 noisy cluster: all legacy counters pinned pre-refactor."""
    sim = Simulator(seed=11, paranoid=True)
    horizon = 20 * SEC
    env = build_disk_cluster(sim, 5)
    apply_ec2_noise(env, Ec2NoiseModel("disk"), horizon)
    strategy = make_strategy("mittos", env.cluster, deadline_us=20 * MS)
    rec = run_clients(env, strategy, n_clients=6, n_ops=60,
                      think_time_us=2 * MS, name="mittos",
                      limit_us=horizon)

    assert len(rec) == 360
    assert round(rec.p(50), 6) == 8.561593
    assert round(rec.p(99), 6) == 22.900999
    assert [n.os.ebusy_returned for n in env.nodes] == [0, 0, 42, 8, 2]
    assert [n.os.reads for n in env.nodes] == [78, 68, 79, 111, 76]
    assert [n.os.writes for n in env.nodes] == [0, 0, 0, 0, 0]
    assert [n.os.scheduler.submitted for n in env.nodes] == \
        [78, 68, 65, 103, 74]
    assert [n.os.scheduler.cancelled for n in env.nodes] == [0, 0, 0, 0, 0]
    assert [n.os.predictor.admitted for n in env.nodes] == \
        [78, 68, 37, 103, 71]
    assert [n.os.predictor.rejected for n in env.nodes] == [0, 0, 42, 8, 2]
    assert [n.os.predictor.late_cancellations for n in env.nodes] == \
        [0, 0, 0, 0, 0]
    assert strategy.failovers == 52
    assert strategy.all_busy == 3
    assert sim.trace_hash() == "8f0016fffbed0dd4072dd0910c633463"
    assert sim.rng_draws() == {
        "disk/n0": 156, "disk/n1": 136, "disk/n2": 128, "disk/n3": 207,
        "disk/n4": 149, "ec2": 37, "keys/0": 102, "keys/1": 103,
        "keys/2": 94, "keys/3": 97, "keys/4": 87, "keys/5": 95,
        "network": 824, "noise/n0": 0, "noise/n1": 0, "noise/n2": 33,
        "noise/n3": 0, "noise/n4": 0,
    }
