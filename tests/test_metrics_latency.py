"""Tests of latency recording and percentile math."""

import pytest

from repro._units import MS
from repro.metrics.latency import LatencyRecorder, percentile


def test_percentile_matches_numpy_linear():
    import numpy as np
    data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]
    for p in (0, 10, 25, 50, 75, 90, 95, 99, 100):
        assert percentile(data, p) == pytest.approx(np.percentile(data, p))


def test_percentile_single_sample():
    assert percentile([42.0], 95) == 42.0


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_recorder_reports_in_ms():
    rec = LatencyRecorder("x")
    for v in (1000.0, 2000.0, 3000.0):
        rec.add(v)
    assert rec.mean_ms == 2.0
    assert rec.p(50) == 2.0
    assert rec.max_ms() == 3.0
    assert len(rec) == 3


def test_recorder_rejects_negative():
    with pytest.raises(ValueError):
        LatencyRecorder().add(-1.0)


def test_recorder_counters():
    rec = LatencyRecorder()
    rec.count("ebusy")
    rec.count("ebusy", 2)
    assert rec.counters == {"ebusy": 3}


def test_recorder_extend_merges():
    a, b = LatencyRecorder("a"), LatencyRecorder("b")
    a.add(1000.0)
    a.count("x")
    b.add(3000.0)
    b.count("x", 4)
    a.extend(b)
    assert len(a) == 2
    assert a.counters["x"] == 5


def test_cdf_is_monotone_and_complete():
    rec = LatencyRecorder()
    for i in range(1, 1001):
        rec.add(float(i))
    cdf = rec.cdf(points=50)
    xs = [x for x, _ in cdf]
    ys = [y for _, y in cdf]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == 1.0


def test_fraction_above():
    rec = LatencyRecorder()
    for v in (1.0, 2.0, 3.0, 4.0):
        rec.add(v * MS)
    assert rec.fraction_above(2.5) == 0.5
    assert rec.fraction_above(10.0) == 0.0


def test_summary_contents():
    rec = LatencyRecorder("line")
    for i in range(100):
        rec.add(float(i) * MS)
    rec.count("failover", 3)
    summary = rec.summary()
    assert summary["name"] == "line"
    assert summary["count"] == 100
    assert summary["failover"] == 3
    assert summary["p95"] == pytest.approx(94.05)
