"""Tests of the TraceBus: control plane, recorders, JSONL, ambient defaults."""

import pytest

from repro.obs.bus import (NullRecorder, TraceBus, TraceRecorder,
                           default_paranoid, default_recorder,
                           install_tracing, read_jsonl, reset_tracing,
                           tracing)
from repro.obs.events import IO_COMPLETE, IO_SUBMIT, TraceEvent
from repro.sim import Simulator


# -- control plane ----------------------------------------------------------
def test_emit_reaches_only_matching_source(sim):
    got_a, got_b = [], []
    src_a, src_b = object(), object()
    sim.bus.subscribe(IO_SUBMIT, got_a.append, source=src_a)
    sim.bus.subscribe(IO_SUBMIT, got_b.append, source=src_b)
    sim.bus.emit(IO_SUBMIT, src_a, "req1")
    assert got_a == ["req1"]
    assert got_b == []


def test_subscribers_run_in_subscription_order(sim):
    order = []
    src = object()
    sim.bus.subscribe(IO_SUBMIT, lambda _: order.append("first"), source=src)
    sim.bus.subscribe(IO_SUBMIT, lambda _: order.append("second"), source=src)
    sim.bus.emit(IO_SUBMIT, src, None)
    assert order == ["first", "second"]


def test_unsubscribe_stops_delivery(sim):
    got = []
    src = object()
    sim.bus.subscribe(IO_SUBMIT, got.append, source=src)
    sim.bus.unsubscribe(IO_SUBMIT, got.append, source=src)
    sim.bus.emit(IO_SUBMIT, src, "x")
    assert got == []


def test_emit_with_no_subscribers_is_harmless(sim):
    sim.bus.emit(IO_COMPLETE, object(), "anything")


# -- recorders --------------------------------------------------------------
def test_null_recorder_is_the_default(sim):
    assert isinstance(sim.bus.recorder, NullRecorder)
    assert sim.bus.recorder.active is False
    assert sim.bus.recording is False


def test_trace_recorder_captures_events():
    rec = TraceRecorder()
    sim = Simulator(seed=1, recorder=rec)
    sim.schedule(5.0, lambda: sim.bus.record(IO_SUBMIT, {"req": 1}))
    sim.run()
    assert rec.count == 1
    (ev,) = rec.events
    assert ev.topic == IO_SUBMIT
    assert ev.time == 5.0
    assert ev.fields == {"req": 1}
    assert rec.by_topic(IO_SUBMIT) == [ev]
    assert rec.topic_counts() == {IO_SUBMIT: 1}


def test_trace_digest_tracks_content():
    rec_a, rec_b = TraceRecorder(), TraceRecorder()
    for rec, req in ((rec_a, 1), (rec_b, 2)):
        sim = Simulator(seed=1, recorder=rec)
        sim.bus.record(IO_SUBMIT, {"req": req})
    assert rec_a.trace_digest() != rec_b.trace_digest()


def test_keep_events_false_keeps_only_the_digest():
    rec = TraceRecorder(keep_events=False)
    sim = Simulator(seed=1, recorder=rec)
    sim.bus.record(IO_SUBMIT, {"req": 1})
    assert rec.count == 1
    assert rec.events is None
    assert rec.trace_digest()
    with pytest.raises(RuntimeError):
        rec.by_topic(IO_SUBMIT)
    with pytest.raises(RuntimeError):
        rec.write_jsonl("/dev/null")


def test_jsonl_round_trip(tmp_path):
    rec = TraceRecorder()
    sim = Simulator(seed=1, recorder=rec)
    sim.bus.record(IO_SUBMIT, {"req": 1, "offset": 4096})
    sim.schedule(3.5, lambda: sim.bus.record(IO_COMPLETE,
                                             {"req": 1, "latency": 3.5}))
    sim.run()
    path = tmp_path / "trace.jsonl"
    assert rec.write_jsonl(path) == 2
    back = read_jsonl(path)
    assert [ev.to_json() for ev in back] == \
        [ev.to_json() for ev in rec.events]


def test_trace_event_dict_round_trip():
    ev = TraceEvent(1.5, IO_SUBMIT, {"req": 3, "pid": 7})
    back = TraceEvent.from_dict(ev.to_dict())
    assert (back.time, back.topic, back.fields) == \
        (ev.time, ev.topic, ev.fields)


def test_jsonl_round_trip_with_every_optional_field(tmp_path):
    """Events exercising the full field palette survive export/import:
    None (a probe verdict's deadline), bools, negative ints, floats,
    strings, and the nested ``stages`` mapping of span events."""
    from repro.obs.events import RPC_SEND, SPAN_REQUEST, VERDICT
    rec = TraceRecorder()
    sim = Simulator(seed=1, recorder=rec)
    sim.bus.record(VERDICT, {
        "req": 3, "op": "read", "offset": 4096, "size": 4096, "pid": 101,
        "predictor": "mittcfq", "accept": True, "probe": False,
        "shadow": False, "deadline": None, "predicted_wait": 120.5,
        "predicted_service": 80.0, "device": "n0", "dev_kind": "disk",
        "sched": "cfq"})
    sim.bus.record(RPC_SEND, {"src": -1, "dst": 2, "latency": 310.25})
    sim.bus.record(SPAN_REQUEST, {
        "req": 3, "total": 1500.0,
        "stages": {"scheduler-queue": 500.0, "device-service": 1000.0}})
    path = tmp_path / "full.jsonl"
    rec.write_jsonl(path)
    back = read_jsonl(path)
    assert [(ev.time, ev.topic, ev.fields) for ev in back] == \
        [(ev.time, ev.topic, ev.fields) for ev in rec.events]


def test_read_jsonl_rejects_truncated_line(tmp_path):
    from repro.obs.bus import TraceFormatError
    path = tmp_path / "trunc.jsonl"
    path.write_text('{"t":0.0,"topic":"io.submit","req":1}\n{"t":1.0,"to')
    with pytest.raises(TraceFormatError, match="trunc.jsonl:2"):
        read_jsonl(path)


def test_read_jsonl_rejects_non_event_json(tmp_path):
    from repro.obs.bus import TraceFormatError
    path = tmp_path / "other.jsonl"
    path.write_text('{"not": "an event"}\n')
    with pytest.raises(TraceFormatError, match="other.jsonl:1"):
        read_jsonl(path)


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"t":0.0,"topic":"io.submit","req":1}\n\n')
    assert len(read_jsonl(path)) == 1


# -- ambient tracing defaults -----------------------------------------------
def test_tracing_context_installs_and_resets():
    rec = TraceRecorder()
    with tracing(rec, paranoid=True) as got:
        assert got is rec
        assert default_recorder() is rec
        assert default_paranoid() is True
        sim = Simulator(seed=3)
        assert sim.bus.recorder is rec
        assert sim.sanitizer is not None
    assert default_recorder() is None
    assert default_paranoid() is False
    assert isinstance(Simulator(seed=3).bus.recorder, NullRecorder)


def test_install_tracing_reset_on_exception():
    rec = TraceRecorder()
    install_tracing(rec)
    try:
        assert Simulator(seed=3).bus.recorder is rec
    finally:
        reset_tracing()
    assert default_recorder() is None


def test_explicit_recorder_overrides_ambient():
    ambient, explicit = TraceRecorder(), TraceRecorder()
    with tracing(ambient):
        sim = Simulator(seed=3, recorder=explicit)
        assert sim.bus.recorder is explicit


def test_paranoid_trace_feeds_sanitizer_hash():
    """Recorded events must change the sanitizer hash (and only then)."""

    def run(record):
        sim = Simulator(seed=5, paranoid=True, recorder=TraceRecorder())
        if record:
            sim.bus.record(IO_SUBMIT, {"req": 1})
        sim.schedule(1.0, lambda: None)
        sim.run()
        return sim.trace_hash()

    assert run(True) != run(False)
    assert run(True) == run(True)


def test_untraced_paranoid_hash_ignores_recorder_absence():
    """Without a recorder the bus records nothing, so the sanitizer hash
    is the pure event-loop hash (historical golden hashes stay valid)."""

    def run():
        sim = Simulator(seed=5, paranoid=True)
        sim.schedule(1.0, lambda: None)
        sim.run()
        return sim.trace_hash()

    assert run() == run()


# -- streaming + gzip traces -------------------------------------------------
def _two_event_recorder():
    rec = TraceRecorder()
    sim = Simulator(seed=1, recorder=rec)
    sim.bus.record(IO_SUBMIT, {"req": 1, "offset": 4096})
    sim.schedule(3.5, lambda: sim.bus.record(IO_COMPLETE,
                                             {"req": 1, "latency": 3.5}))
    sim.run()
    return rec


def test_iter_jsonl_streams_lazily(tmp_path):
    from repro.obs.bus import iter_jsonl
    rec = _two_event_recorder()
    path = tmp_path / "trace.jsonl"
    rec.write_jsonl(path)
    it = iter_jsonl(path)
    first = next(it)
    assert first.topic == IO_SUBMIT
    assert [ev.topic for ev in it] == [IO_COMPLETE]


def test_iter_jsonl_error_carries_line_number(tmp_path):
    from repro.obs.bus import TraceFormatError, iter_jsonl
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t":0.0,"topic":"io.submit","req":1}\nnot json\n')
    it = iter_jsonl(path)
    next(it)
    with pytest.raises(TraceFormatError, match="bad.jsonl:2"):
        next(it)


def test_gzip_jsonl_round_trip(tmp_path):
    rec = _two_event_recorder()
    path = tmp_path / "trace.jsonl.gz"
    assert rec.write_jsonl(path) == 2
    import gzip
    with gzip.open(path, "rt") as fh:  # genuinely gzip on disk
        assert fh.readline().startswith('{"t":')
    back = read_jsonl(path)
    assert [ev.to_json() for ev in back] == \
        [ev.to_json() for ev in rec.events]


def test_gzip_export_is_byte_stable(tmp_path):
    """mtime=0 in the gzip header: two exports of the same trace are
    byte-identical (same-seed .gz artifacts can be cmp'd in CI)."""
    rec = _two_event_recorder()
    path_a = tmp_path / "a.jsonl.gz"
    path_b = tmp_path / "b.jsonl.gz"
    rec.write_jsonl(path_a)
    rec.write_jsonl(path_b)
    assert path_a.read_bytes() == path_b.read_bytes()


def test_gzip_trace_error_contract_matches_plain(tmp_path):
    import gzip
    from repro.obs.bus import TraceFormatError
    path = tmp_path / "bad.jsonl.gz"
    with gzip.open(path, "wt") as fh:
        fh.write('{"t":0.0,"topic":"io.submit","req":1}\n{"nope":1}\n')
    with pytest.raises(TraceFormatError, match="bad.jsonl.gz:2"):
        read_jsonl(path)


def test_open_trace_plain_passthrough(tmp_path):
    from repro.obs.bus import open_trace
    path = tmp_path / "plain.txt"
    with open_trace(path, "w") as fh:
        fh.write("hello\n")
    assert path.read_bytes() == b"hello\n"
    with open_trace(path) as fh:
        assert fh.read() == "hello\n"
