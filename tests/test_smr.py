"""Tests of the SMR drive model and MittSMR (§8.2)."""

import pytest

from repro._units import GB, KB, MB, MS
from repro.devices import BlockRequest, Disk, DiskParams, IoOp
from repro.devices.disk_profile import profile_disk
from repro.devices.smr import SmrDisk, SmrParams
from repro.errors import is_ebusy
from repro.kernel import NoopScheduler, OS
from repro.mittos.mittsmr import MittSmr

MODEL = profile_disk(lambda sim: Disk(sim, DiskParams(
    jitter_frac=0.0, hiccup_prob=0.0)))


def _params(**kw):
    defaults = dict(jitter_frac=0.0, hiccup_prob=0.0,
                    persistent_cache_bytes=8 * MB, band_bytes=4 * MB,
                    band_clean_time_us=100 * MS)
    defaults.update(kw)
    return SmrParams(**defaults)


def _stack(sim, cleaning_aware=True, **kw):
    smr = SmrDisk(sim, _params(**kw))
    sched = NoopScheduler(sim, smr)
    predictor = MittSmr(MODEL, smr, cleaning_aware=cleaning_aware)
    os_ = OS(sim, smr, sched, predictor=predictor)
    return os_, predictor, smr


def _fill_cache(sim, os_, n_writes=8, size=1 * MB):
    def writer():
        for i in range(n_writes):
            req = BlockRequest(IoOp.WRITE, i * 100 * MB, size)
            done = sim.event()
            req.add_callback(lambda r: done.try_succeed())
            os_.scheduler.submit(req)
            yield done

    proc = sim.process(writer())
    sim.run_until(proc)


def test_writes_fill_the_persistent_cache(sim):
    os_, _, smr = _stack(sim)
    _fill_cache(sim, os_, n_writes=4)
    assert smr.cache_fill_fraction == pytest.approx(0.5)


def test_cleaning_triggers_at_threshold(sim):
    os_, _, smr = _stack(sim)
    _fill_cache(sim, os_, n_writes=8)  # 8 MB = 100% > 80% trigger
    assert smr.cleaning or smr.bands_cleaned > 0
    sim.run()
    assert smr.bands_cleaned >= 1
    assert smr.cache_fill_fraction <= 0.5 + 1e-9


def test_reads_stall_behind_cleaning(sim):
    os_, _, smr = _stack(sim)
    _fill_cache(sim, os_, n_writes=8)
    assert smr.cleaning
    req = BlockRequest(IoOp.READ, 500 * GB, 4 * KB)
    req.add_callback(lambda r: None)
    start = sim.now
    done = sim.event()
    req.add_callback(lambda r: done.try_succeed())
    os_.scheduler.submit(req)
    sim.run_until(done)
    assert done.triggered
    assert sim.now - start > 50 * MS  # waited out (part of) the cleaning


def test_mittsmr_rejects_reads_during_cleaning(sim):
    os_, predictor, smr = _stack(sim)
    _fill_cache(sim, os_, n_writes=8)
    assert smr.cleaning

    def gen():
        result = yield os_.read(0, 500 * GB, 4 * KB, deadline=20 * MS)
        return result

    proc = sim.process(gen())
    sim.run_until(proc)
    assert is_ebusy(proc.value)


def test_cleaning_blind_predictor_misses_the_tail(sim):
    os_, predictor, smr = _stack(sim, cleaning_aware=False)
    _fill_cache(sim, os_, n_writes=8)
    assert smr.cleaning

    def gen():
        result = yield os_.read(0, 500 * GB, 4 * KB, deadline=20 * MS)
        return result

    proc = sim.process(gen())
    sim.run_until(proc)
    # Accepted (false negative): the read then blows its deadline.
    assert not is_ebusy(proc.value)
    assert proc.value.latency > 20 * MS


def test_mittsmr_accepts_when_idle(sim):
    os_, predictor, smr = _stack(sim)

    def gen():
        result = yield os_.read(0, 500 * GB, 4 * KB, deadline=30 * MS)
        return result

    proc = sim.process(gen())
    sim.run_until(proc)
    assert not is_ebusy(proc.value)


def test_random_writes_are_fast_until_cleaning(sim):
    """SMR's persistent cache absorbs random writes cheaply."""
    os_, _, smr = _stack(sim, persistent_cache_bytes=64 * MB)
    latencies = []

    def writer():
        rng = sim.rng("w")
        for _ in range(10):
            req = BlockRequest(IoOp.WRITE,
                               rng.randrange(0, 900 * GB) // 4096 * 4096,
                               64 * KB)
            done = sim.event()
            req.add_callback(lambda r: done.try_succeed())
            start = sim.now
            os_.scheduler.submit(req)
            yield done
            latencies.append(sim.now - start)

    proc = sim.process(writer())
    sim.run_until(proc)
    # Cache-absorbed writes avoid the full-stroke seek cost.
    assert max(latencies) < 5 * MS


def test_clean_observer_reports_start_and_stop(sim):
    os_, _, smr = _stack(sim)
    events = []
    smr.add_clean_observer(lambda kind, t: events.append(kind))
    _fill_cache(sim, os_, n_writes=8)
    sim.run()
    assert "start" in events and "stop" in events
