"""Tests of the client-side replica health tracker."""

from repro.cluster.health import ReplicaHealth


class _FakeNode:
    def __init__(self, node_id):
        self.node_id = node_id

    def __repr__(self):
        return f"n{self.node_id}"


def _nodes(*ids):
    return [_FakeNode(i) for i in ids]


def test_unknown_nodes_are_healthy():
    health = ReplicaHealth()
    assert health.suspicion(7) == 0.0
    assert not health.suspect(7)


def test_ewma_rises_on_failures_and_decays_on_successes():
    health = ReplicaHealth(alpha=0.4)
    health.record(0, failed=True)
    health.record(0, failed=True)
    risen = health.suspicion(0)
    assert risen > 0.5  # two straight failures cross the default threshold
    health.record(0, failed=False)
    health.record(0, failed=False)
    assert health.suspicion(0) < risen
    assert health.recorded == 4


def test_order_is_identity_when_nobody_is_suspect():
    health = ReplicaHealth()
    replicas = _nodes(2, 0, 1)
    assert health.order(replicas) == replicas
    assert health.reorders == 0


def test_order_moves_suspects_last_keeping_healthy_order():
    health = ReplicaHealth()
    for _ in range(3):
        health.record(0, failed=True)
    replicas = _nodes(0, 1, 2)
    ordered = health.order(replicas)
    assert [n.node_id for n in ordered] == [1, 2, 0]
    assert health.reorders == 1


def test_multiple_suspects_sorted_least_suspect_first():
    health = ReplicaHealth()
    for _ in range(5):
        health.record(0, failed=True)   # very suspect
    for _ in range(2):
        health.record(2, failed=True)   # mildly suspect
    ordered = health.order(_nodes(0, 1, 2))
    assert [n.node_id for n in ordered] == [1, 2, 0]


def test_equal_suspicion_ties_break_by_node_id():
    # Regression: a bare-score sort fell back to placement order for
    # equal EWMAs, so the race harness could legally permute the suspect
    # ordering; the (suspicion, node_id) key makes it deterministic.
    health = ReplicaHealth()
    for node_id in (5, 3, 9):
        for _ in range(3):
            health.record(node_id, failed=True)  # identical suspicion
    assert len({health.suspicion(n) for n in (5, 3, 9)}) == 1
    for replicas in (_nodes(5, 3, 9), _nodes(9, 5, 3), _nodes(3, 9, 5)):
        ordered = health.order(replicas)
        assert [n.node_id for n in ordered] == [3, 5, 9]


def test_recovered_node_regains_its_place():
    health = ReplicaHealth()
    for _ in range(3):
        health.record(0, failed=True)
    assert [n.node_id for n in health.order(_nodes(0, 1, 2))] == [1, 2, 0]
    for _ in range(6):
        health.record(0, failed=False)  # the node came back
    assert [n.node_id for n in health.order(_nodes(0, 1, 2))] == [0, 1, 2]
