"""Tests of the ninth strategy: mittos under SLO feedback control."""

import pytest

from repro._units import MS, SEC
from repro.cluster.strategies import STRATEGIES, AdaptiveStrategy
from repro.errors import EIO, is_ebusy
from repro.experiments.common import build_disk_cluster, make_strategy
from repro.slo_control import SloController


def test_adaptive_is_the_ninth_registered_strategy():
    assert STRATEGIES["adaptive"] is AdaptiveStrategy
    assert AdaptiveStrategy.name == "adaptive"


def test_factory_builds_a_default_controller(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("adaptive", env.cluster, deadline_us=20 * MS)
    ctrl = strategy.controller
    assert isinstance(ctrl, SloController)
    assert ctrl.baseline_deadline_us == 20 * MS
    assert strategy.effective_deadline_us == 20 * MS


def test_controller_knobs_pass_through_the_factory(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("adaptive", env.cluster, deadline_us=20 * MS,
                             floor_us=2 * MS, ceiling_us=100 * MS,
                             dwell_windows=3)
    assert strategy.controller.floor_us == 2 * MS
    assert strategy.controller.ceiling_us == 100 * MS
    assert strategy.controller.dwell_windows == 3


def test_knobs_and_explicit_controller_are_mutually_exclusive(sim):
    env = build_disk_cluster(sim, 3)
    ctrl = SloController(sim, 20 * MS)
    with pytest.raises(ValueError):
        AdaptiveStrategy(env.cluster, 20 * MS, controller=ctrl,
                         floor_us=2 * MS)


def test_ops_feed_the_controller_window(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("adaptive", env.cluster, deadline_us=40 * MS)
    events = [strategy.get(k) for k in (1, 2, 3)]
    sim.run()
    assert all(not is_ebusy(ev.value) and ev.value is not EIO
               for ev in events)
    # Each completed get pushed its end-to-end latency into the window.
    assert len(strategy.controller._lat) == 3
    assert all(lat > 0 for lat in strategy.controller._lat)


def test_effective_deadline_tracks_the_ladder(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("adaptive", env.cluster, deadline_us=20 * MS)
    strategy.controller.set_manual(6 * MS)
    assert strategy.effective_deadline_us == 6 * MS
    strategy.controller.trip_killswitch()
    assert strategy.effective_deadline_us == 20 * MS
    strategy.controller.clear_killswitch()
    strategy.controller.clear_manual()
    assert strategy.effective_deadline_us == 20 * MS


def test_guard_nodes_installs_one_guard_per_replica(sim):
    env = build_disk_cluster(sim, 4)
    strategy = make_strategy("adaptive", env.cluster, deadline_us=20 * MS)
    guards = strategy.guard_nodes(qdepth_limit=16)
    assert len(guards) == 4
    assert [g.node_id for g in guards] == [n.node_id for n in env.nodes]
    assert all(n.os.admission is g for n, g in zip(env.nodes, guards))
    assert strategy.controller.guards == guards
    strategy.controller._set_level(2)
    assert all(g.level == 2 for g in guards)


def test_arm_drives_windows_on_sim_time(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("adaptive", env.cluster, deadline_us=40 * MS,
                             window_us=100 * MS)
    ticks = strategy.arm(1 * SEC)
    assert ticks == 10
    for k in range(5):
        strategy.get(k)
    sim.run()
    assert strategy.controller.windows == 10
    assert strategy.controller._lat == []  # folded into closed windows


def test_adaptive_inherits_mittos_failover(sim):
    # A busy primary: the adaptive line must keep mittos's EBUSY-driven
    # failover behaviour (it composes, not replaces).
    env = build_disk_cluster(sim, 6)
    primary = env.cluster.replicas_for(7)[0]
    env.injectors[primary.node_id].busy_window(3 * SEC, concurrency=5)
    strategy = make_strategy("adaptive", env.cluster, deadline_us=15 * MS)
    ev = strategy.get(7)
    sim.run()
    assert not is_ebusy(ev.value)
    assert ev.value is not EIO
