"""Tests of SLO types."""

import pytest

from repro._units import MS
from repro.metrics.latency import LatencyRecorder
from repro.mittos import DeadlineSlo, SloRegistry


def test_deadline_must_be_positive():
    with pytest.raises(ValueError):
        DeadlineSlo(0)


def test_from_ms():
    assert DeadlineSlo.from_ms(20).deadline_us == 20 * MS


def test_from_percentile():
    rec = LatencyRecorder()
    for i in range(1, 101):
        rec.add(i * MS)
    slo = DeadlineSlo.from_percentile(rec, 95)
    assert slo.deadline_us == pytest.approx(95.05 * MS)


def test_registry_per_user_with_default():
    registry = SloRegistry(default=DeadlineSlo.from_ms(20))
    registry.set("alice", DeadlineSlo.from_ms(2))
    assert registry.deadline_us("alice") == 2 * MS
    assert registry.deadline_us("bob") == 20 * MS


def test_registry_without_default_returns_none():
    assert SloRegistry().deadline_us("nobody") is None


def test_registry_rejects_raw_numbers():
    with pytest.raises(TypeError):
        SloRegistry().set("u", 20.0)


def test_registry_update_any_time():
    registry = SloRegistry()
    registry.set("u", DeadlineSlo.from_ms(20))
    registry.set("u", DeadlineSlo.from_ms(5))
    assert registry.deadline_us("u") == 5 * MS
