"""Edge-case tests of the per-operation resilience budget (OpContext)."""

import pytest

from repro._units import MS, SEC
from repro.cluster.strategies.base import OpContext
from repro.errors import EIO
from repro.experiments.common import build_disk_cluster, make_strategy
from repro.faults import FaultPlane, FaultSpec, MessageLoss
from repro.sim import Simulator


# -- the budget boundary -----------------------------------------------------

def test_exactly_spent_budget_is_exhausted():
    ctx = OpContext(start=100.0, budget_us=50.0)
    assert ctx.remaining_us(150.0) == 0.0
    assert ctx.exhausted(150.0)          # zero left is spent, not "one more"
    assert not ctx.exhausted(149.999)


def test_attempt_cap_reached_at_the_deadline():
    # Both limits land at once: the cap must hold even with budget left,
    # and the budget must hold even with attempts left.
    ctx = OpContext(start=0.0, budget_us=100.0, max_attempts=3)
    ctx.attempts = 3
    assert ctx.exhausted(50.0)           # cap first
    ctx.attempts = 2
    assert not ctx.exhausted(99.9)
    assert ctx.exhausted(100.0)          # budget first


def test_attempt_limit_is_min_of_timeout_and_remaining():
    ctx = OpContext(start=0.0, budget_us=100.0, rpc_timeout_us=30.0)
    assert ctx.attempt_limit_us(0.0) == 30.0       # timeout binds
    assert ctx.attempt_limit_us(80.0) == 20.0      # remaining binds
    assert ctx.attempt_limit_us(100.0) == 0.0      # nothing left
    assert ctx.attempt_limit_us(120.0) == -20.0    # already overdrawn


def test_unbounded_context_never_exhausts():
    ctx = OpContext(start=0.0)
    assert ctx.remaining_us(1e12) is None
    assert ctx.attempt_limit_us(1e12) is None
    assert not ctx.exhausted(1e12)


# -- budget exhaustion mid-backoff -------------------------------------------

def test_op_ends_with_eio_inside_the_budget_under_total_loss(sim):
    # 100% message loss: every attempt times out, the last-resort loop
    # backs off between rounds — and the backoff is clamped to the
    # remaining budget, so the op terminates with EIO at (or before) the
    # budget boundary instead of sleeping past it.
    spec = FaultSpec(message_loss=(MessageLoss(rate=1.0),),
                     rpc_timeout_us=10 * MS, op_budget_us=60 * MS,
                     max_attempts=50)
    plane = FaultPlane(sim, spec)
    env = build_disk_cluster(sim, 3,
                             fault_injector=plane.decision_injector)
    plane.arm(env.cluster)
    strategy = make_strategy("mittos", env.cluster, deadline_us=20 * MS)
    start = sim.now
    ev = strategy.get(5)
    sim.run()
    assert ev.value is EIO
    assert sim.now - start <= 60 * MS + 1e-6
    assert strategy.rpc_timeouts > 0     # it really was retrying


def test_attempt_cap_bounds_the_op_before_the_budget_does(sim):
    spec = FaultSpec(message_loss=(MessageLoss(rate=1.0),),
                     rpc_timeout_us=5 * MS, op_budget_us=10 * SEC,
                     max_attempts=4)
    plane = FaultPlane(sim, spec)
    env = build_disk_cluster(sim, 3,
                             fault_injector=plane.decision_injector)
    plane.arm(env.cluster)
    strategy = make_strategy("mittos", env.cluster, deadline_us=20 * MS)
    ev = strategy.get(5)
    sim.run()
    assert ev.value is EIO
    # 4 capped attempts at 5 ms each plus bounded backoffs: nowhere near
    # the 10 s budget.
    assert sim.now < 1 * SEC


# -- jittered backoff determinism --------------------------------------------

def _backoff_sequence(seed, n=8):
    sim = Simulator(seed=seed)
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("mittos", env.cluster, deadline_us=20 * MS)
    return [strategy._backoff_us(r) for r in range(n)]


def test_backoff_jitter_is_same_seed_deterministic():
    assert _backoff_sequence(seed=11) == _backoff_sequence(seed=11)
    assert _backoff_sequence(seed=11) != _backoff_sequence(seed=12)


def test_backoff_respects_base_doubling_and_cap():
    sim = Simulator(seed=3)
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("mittos", env.cluster, deadline_us=20 * MS)
    for round_no in range(10):
        base = min(strategy.backoff_base_us * (2 ** round_no),
                   strategy.backoff_cap_us)
        delay = strategy._backoff_us(round_no)
        assert base / 2 <= delay < base  # equal jitter: floored, bounded
