"""Whole-program contract analyzer: DET011-DET015, DETW01, --jobs,
baselines.

The planted-drift tests mutate *real* repo sources (a topic typo, a
payload-key rename, a consumer-key rename) and assert the right rule
catches each — the end-to-end failure mode this PR exists to close.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.linter import (filter_baseline, lint_paths_program,
                                   lint_source, load_baseline,
                                   write_baseline)

ROOT = Path(__file__).parent.parent
SCHEDULER = ROOT / "src" / "repro" / "kernel" / "scheduler.py"
ACCURACY = ROOT / "src" / "repro" / "obs" / "accuracy.py"
FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def _rules(findings):
    return [f.rule for f in findings]


# -- planted drift in real sources -------------------------------------------

def test_planted_topic_typo_in_scheduler_caught_by_det011():
    source = SCHEDULER.read_text()
    assert "bus.record(IO_SUBMIT," in source
    mutated = source.replace("bus.record(IO_SUBMIT,",
                             'bus.record("io.submitted",')
    findings = lint_source(mutated, SCHEDULER.relative_to(ROOT))
    assert _rules(findings) == ["DET011"]
    assert "io.submitted" in findings[0].message


def test_planted_payload_rename_in_scheduler_caught_by_det012():
    source = SCHEDULER.read_text()
    assert 'fields["latency"]' in source
    mutated = source.replace('fields["latency"]', 'fields["latency_us"]')
    findings = lint_source(mutated, SCHEDULER.relative_to(ROOT))
    assert set(_rules(findings)) == {"DET012"}
    messages = " | ".join(f.message for f in findings)
    assert "latency_us" in messages          # undeclared key
    assert "missing required key 'latency'" in messages


def test_planted_consumer_rename_in_accuracy_caught_by_det013():
    source = ACCURACY.read_text()
    assert 'fields.get("predicted_wait")' in source
    mutated = source.replace('fields.get("predicted_wait")',
                             'fields.get("predicted_wait_us")')
    findings = lint_source(mutated, ACCURACY.relative_to(ROOT))
    assert _rules(findings) == ["DET013"]
    assert "predicted_wait_us" in findings[0].message
    assert "predictor.verdict" in findings[0].message


def test_unmutated_sources_are_clean():
    assert lint_source(SCHEDULER.read_text(),
                       SCHEDULER.relative_to(ROOT)) == []
    assert lint_source(ACCURACY.read_text(),
                       ACCURACY.relative_to(ROOT)) == []


# -- DET012 payload resolution edges -----------------------------------------

def test_det012_star_expansion_checks_only_visible_keys():
    src = (
        "from repro.obs.events import VERDICT, request_fields\n"
        "def verdict(bus, req, labels):\n"
        "    bus.record(VERDICT, dict(request_fields(req),\n"
        "                             predictor='x', bogus=1, **labels))\n"
    )
    findings = lint_source(src, "x/emit.py")
    # 'bogus' is undeclared -> flagged; missing required keys are NOT
    # flagged because **labels may provide them.
    assert _rules(findings) == ["DET012"]
    assert "bogus" in findings[0].message


def test_det012_opaque_payload_is_skipped():
    src = (
        "from repro.obs.events import VERDICT\n"
        "def verdict(bus, payload):\n"
        "    bus.record(VERDICT, payload)\n"
    )
    assert lint_source(src, "x/emit.py") == []


def test_non_trace_record_methods_are_ignored():
    src = (
        "def mark(health, node_id, ok):\n"
        "    health.record(node_id, ok)\n"
        "def log(recorder, event):\n"
        "    recorder.record(event)\n"
    )
    assert lint_source(src, "x/consume.py") == []


# -- DET013 attribution edges ------------------------------------------------

def test_det013_by_topic_loop_attribution():
    src = (
        "from repro.obs.events import SPAN_OP\n"
        "def totals(recorder):\n"
        "    out = []\n"
        "    for ev in recorder.by_topic(SPAN_OP):\n"
        "        out.append(ev.fields['grand_total'])\n"
        "    return out\n"
    )
    findings = lint_source(src, "x/consume.py")
    assert _rules(findings) == ["DET013"]
    assert "grand_total" in findings[0].message


def test_det013_union_of_topics_in_view():
    # A shared helper reached from two guards is checked against the
    # union of both schemas — 'dev' (io.submit) and 'device'
    # (io.service_start) are each fine, a stranger key is not.
    src = (
        "from repro.obs.events import IO_SERVICE_START, IO_SUBMIT\n"
        "def _dev(fields):\n"
        "    return fields.get('dev') or fields.get('device')\n"
        "def fold(ev):\n"
        "    if ev.topic == IO_SUBMIT:\n"
        "        return _dev(ev.fields)\n"
        "    if ev.topic == IO_SERVICE_START:\n"
        "        return _dev(ev.fields)\n"
        "    return None\n"
    )
    assert lint_source(src, "x/consume.py") == []


def test_det013_unattributed_reads_are_skipped():
    src = (
        "def peek(fields):\n"
        "    return fields.get('whatever')\n"
    )
    assert lint_source(src, "x/consume.py") == []


# -- DET014 / DET015 interprocedural edges -----------------------------------

def test_det014_through_two_helper_frames():
    src = (
        "def _draw(sim):\n"
        "    # repro: allow[DET006] reviewed\n"
        "    return sim.rng('faults/net').random()\n"
        "def _jitter(sim):\n"
        "    return _draw(sim)\n"
        "def hop(sim):\n"
        "    return 10.0 + _jitter(sim)\n"
    )
    findings = lint_source(src, "cluster/net.py")
    assert set(_rules(findings)) == {"DET014"}
    # fires at the _jitter->_draw frame AND the hop->_jitter frame
    assert len(findings) == 2
    assert all("faults/net" in f.message for f in findings)


def test_det014_does_not_cross_package_boundaries():
    # An experiments-layer call into a faults-layer API is a legitimate
    # cross-package call: the callee's streams are its own accounting.
    files = {
        "src/repro/faults/plane.py": (
            "def drop_message(sim):\n"
            "    return sim.rng('faults/net').random() < 0.1\n"
        ),
        "src/repro/experiments/run.py": (
            "from repro.faults.plane import drop_message\n"
            "def step(sim):\n"
            "    return drop_message(sim)\n"
        ),
    }
    import ast
    from repro.analysis.effects import (EffectAnalysis, check_det014)
    parsed = [(p, Path(p).parts, ast.parse(s)) for p, s in files.items()]
    analysis = EffectAnalysis.build(parsed)
    assert check_det014(analysis) == []
    # ...but the stream effect is still visible on the callee itself.
    key = ("src/repro/faults/plane.py", "drop_message")
    assert analysis.transitive_streams(key) == {"faults/net"}


def test_det015_direct_schedule_in_set_loop():
    src = (
        "def flush(sim, batch):\n"
        "    stale = {b for b in batch if b.old}\n"
        "    for item in stale:\n"
        "        sim.schedule_in(1.0, item.close)\n"
    )
    findings = lint_source(src, "tools/gc.py")
    assert _rules(findings) == ["DET015"]


def test_det015_sorted_iteration_is_clean():
    src = (
        "def flush(sim, batch):\n"
        "    stale = {b for b in batch if b.old}\n"
        "    for item in sorted(stale):\n"
        "        sim.schedule_in(1.0, item.close)\n"
    )
    assert lint_source(src, "tools/gc.py") == []


# -- dead topics (DETW01) ----------------------------------------------------

def test_dead_topics_silent_without_registry_in_view():
    # A partial program without repro.obs.schema in the linted set just
    # means "emitter not in view" — never a finding.
    findings = lint_paths_program([FIXTURES / "det012_bad.py"])
    assert not any(f.rule == "DETW01" for f in findings)


def test_dead_topic_findings_anchor_at_the_registry():
    registry = FIXTURES / "repro" / "obs" / "schema.py"
    findings = lint_paths_program([registry, FIXTURES / "detw01_ok.py"])
    dead = [f for f in findings if f.rule == "DETW01"]
    assert dead and all(f.path == str(registry) for f in dead)
    messages = " | ".join(f.message for f in dead)
    # detw01_ok.py emits io.submit, so it is alive ...
    assert "'io.submit'" not in messages
    # ... while slo.shed has no emitter in view and anchors at its
    # declaration line in the (fixture) registry.
    slo_shed = next(f for f in dead if "'slo.shed'" in f.message)
    registry_lines = registry.read_text().splitlines()
    assert registry_lines[slo_shed.line - 1].startswith("SLO_SHED")


def test_dead_topic_suppressible_at_the_declaration_line(tmp_path):
    registry = tmp_path / "repro" / "obs" / "schema.py"
    registry.parent.mkdir(parents=True)
    registry.write_text(
        "SLO_SHED = 'slo.shed'  # repro: allow[DETW01] emitter pending\n")
    findings = lint_paths_program([registry])
    assert not any("'slo.shed'" in f.message for f in findings
                   if f.rule == "DETW01")


def test_no_dead_topics_over_the_whole_repo():
    paths = [ROOT / "src" / "repro", ROOT / "benchmarks",
             ROOT / "examples"]
    findings = lint_paths_program([p for p in paths if p.exists()])
    assert findings == [], "\n".join(f.render() for f in findings)


# -- --jobs parallel fan-out -------------------------------------------------

def test_parallel_lint_matches_serial():
    serial = lint_paths_program([FIXTURES], jobs=1)
    parallel = lint_paths_program([FIXTURES], jobs=2)
    assert serial == parallel
    assert serial, "fixture tree should produce findings"


def test_cli_jobs_flag(capsys):
    code = analysis_main(["lint", str(FIXTURES / "det001_ok.py"),
                          "--jobs", "2"])
    assert code == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        analysis_main(["lint", str(FIXTURES), "--jobs", "0"])
    capsys.readouterr()


# -- baselines ---------------------------------------------------------------

def test_baseline_roundtrip(tmp_path):
    findings = lint_paths_program([FIXTURES / "det001_bad.py"])
    assert findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    assert filter_baseline(findings, load_baseline(baseline_path)) == []
    # A fresh finding (not in the baseline) survives the filter.
    more = lint_paths_program([FIXTURES / "det004_bad.py"])
    fresh = filter_baseline(findings + more,
                            load_baseline(baseline_path))
    assert fresh == more


def test_baseline_budget_is_per_occurrence(tmp_path):
    findings = lint_paths_program([FIXTURES / "det001_bad.py"])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings[:1], baseline_path)
    fresh = filter_baseline(findings, load_baseline(baseline_path))
    assert len(fresh) == len(findings) - 1


def test_cli_baseline_flags(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    bad = str(FIXTURES / "det001_bad.py")
    assert analysis_main(["lint", bad, "--write-baseline",
                          str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert json.loads(baseline.read_text())["version"] == 1
    # With the baseline installed the same findings no longer fail...
    assert analysis_main(["lint", bad, "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # ...but a file with new findings still does.
    assert analysis_main(["lint", bad, str(FIXTURES / "det004_bad.py"),
                          "--baseline", str(baseline)]) == 1
    capsys.readouterr()
