"""Tests: the five trace families really differ as §7.6 requires."""

import random

import pytest

from repro._units import GB, SEC
from repro.workloads.stats import characterize
from repro.workloads.traces import TRACE_FAMILIES, generate_trace

SPAN = 200 * GB


def _profile(name, seed=1):
    records = generate_trace(TRACE_FAMILIES[name], random.Random(seed),
                             60 * SEC, span_bytes=SPAN)
    return characterize(records, SPAN)


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        characterize([], SPAN)


def test_measured_iops_match_specs():
    for name, spec in TRACE_FAMILIES.items():
        profile = _profile(name)
        assert spec.iops * 0.6 < profile.iops < spec.iops * 2.2, name


def test_exch_is_write_heavy_and_tpcc_read_leaning():
    assert _profile("EXCH").read_fraction < 0.45
    assert _profile("TPCC").read_fraction > 0.55
    assert _profile("LMBE").read_fraction > 0.75


def test_lmbe_has_the_largest_ios():
    sizes = {name: _profile(name).mean_size for name in TRACE_FAMILIES}
    assert sizes["LMBE"] == max(sizes.values())
    assert sizes["TPCC"] == min(sizes.values()) or \
        sizes["EXCH"] == min(sizes.values())


def test_locality_ordering():
    hot = {name: _profile(name).hot_fraction for name in TRACE_FAMILIES}
    assert hot["LMBE"] > hot["TPCC"]
    assert hot["EXCH"] > hot["TPCC"]


def test_dtrs_is_more_sequential_than_tpcc():
    assert (_profile("DTRS").sequential_fraction
            > _profile("TPCC").sequential_fraction + 0.2)


def test_burstiness_ordering():
    """EXCH (burstiness .8) arrives burstier than TPCC (.1)."""
    assert (_profile("EXCH").interarrival_cv
            > _profile("TPCC").interarrival_cv)


def test_row_rendering():
    profile = _profile("DAPPS")
    row = profile.as_row()
    assert len(row) == len(profile.ROW_HEADERS)
