"""Replay-divergence regression: fig3 must replay bit-identically.

Runs a scaled-down variant of the Figure 3 EC2-dynamism experiment twice
with the same seed under ``paranoid=True`` and asserts identical trace
hashes — the end-to-end check that the whole stack (disk model, CFQ,
page cache, noise injectors, probe processes) honours the determinism
contract.
"""

from repro._units import SEC
from repro.analysis import verify_replay
from repro.experiments import fig3
from repro.sim import Simulator


def test_fig3_probe_replays_identically():
    report = verify_replay(fig3.replay_scenario, seed=7)
    assert report.ok, report.render()
    assert report.events[0] > 100  # a non-trivial amount of work ran
    assert report.hashes[0] == report.hashes[1]


def test_fig3_probe_seed_changes_trace():
    hashes = []
    for seed in (7, 8):
        sim = Simulator(seed=seed, paranoid=True)
        fig3.replay_scenario(sim)
        hashes.append(sim.trace_hash())
    assert hashes[0] != hashes[1]


def test_fig3_probe_nodes_accepts_external_simulator():
    sim = Simulator(seed=5, paranoid=True)
    recorders, schedules = fig3._probe_nodes(
        "disk", n_nodes=2, horizon_us=1 * SEC, seed=5, sim=sim)
    assert len(recorders) == 2 and len(schedules) == 2
    assert sim.sanitizer.events > 0
    assert any(count > 0 for count in sim.rng_draws().values())
