"""Span algebra: every recorded span set must partition its latency.

Covers the unit-level span constructors, the traced OS read paths (disk,
SSD, cache hit, fast EBUSY, MittCFQ late cancellation), client op spans,
and the whole-scenario invariant over fig3 and the chaos replay.
"""

from repro._units import GB, KB, MS, SEC
from repro.devices import BlockRequest, Disk, DiskParams, IoOp, Ssd
from repro.devices.disk_profile import profile_disk
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, NoopScheduler, OS, PageCache
from repro.mittos import MittCfq
from repro.obs.bus import TraceRecorder
from repro.obs.events import (SPAN_OP, SPAN_REQUEST, STAGE_CACHE,
                              STAGE_CLIENT_OTHER, STAGE_DEVICE_QUEUE,
                              STAGE_DEVICE_SERVICE, STAGE_SCHED_QUEUE,
                              STAGE_SYSCALL)
from repro.obs.spans import (cache_hit_spans, check_span_invariant,
                             close_op_spans, ebusy_spans, request_spans,
                             spans_sum)
from repro.sim import Simulator
from tests.conftest import run_process

MODEL = profile_disk(lambda s: Disk(s, DiskParams(jitter_frac=0.0,
                                                  hiccup_prob=0.0)))


# -- unit-level span constructors -------------------------------------------
def test_request_spans_partition_a_served_request():
    req = BlockRequest(IoOp.READ, 0, 4 * KB)
    req.submit_time = 10.0
    req.dispatch_time = 25.0
    req.service_start = 40.0
    req.complete_time = 100.0
    spans = request_spans(req, 100.0)
    assert spans == {STAGE_SCHED_QUEUE: 15.0, STAGE_DEVICE_QUEUE: 15.0,
                     STAGE_DEVICE_SERVICE: 60.0}
    assert check_span_invariant(spans, 90.0)


def test_request_spans_cancelled_is_all_scheduler_queue():
    req = BlockRequest(IoOp.READ, 0, 4 * KB)
    req.submit_time = 10.0
    req.cancelled = True
    spans = request_spans(req, 70.0)
    assert spans == {STAGE_SCHED_QUEUE: 60.0}


def test_request_spans_late_observation_goes_to_client_other():
    req = BlockRequest(IoOp.READ, 0, 4 * KB)
    req.submit_time = 0.0
    req.dispatch_time = 10.0
    req.service_start = 10.0
    req.complete_time = 50.0
    spans = request_spans(req, 58.0)
    assert spans[STAGE_CLIENT_OTHER] == 8.0
    assert check_span_invariant(spans, 58.0)


def test_cache_hit_and_ebusy_spans():
    spans = cache_hit_spans(2.0, 18.5)
    assert spans == {STAGE_SYSCALL: 2.0, STAGE_CACHE: 16.5}
    assert ebusy_spans(2.0) == {STAGE_SYSCALL: 2.0}


def test_close_op_spans_charges_residual():
    class Ctx:
        start = 100.0
        spans = {"network-hop": 30.0, "server": 50.0}

    spans = close_op_spans(Ctx, 200.0)
    assert spans[STAGE_CLIENT_OTHER] == 20.0
    assert check_span_invariant(spans, 100.0)


# -- traced OS read paths ---------------------------------------------------
def _traced_os(cache_pages=None, mitt=False, depth=4, device="disk"):
    rec = TraceRecorder()
    sim = Simulator(seed=2, recorder=rec)
    if device == "disk":
        dev = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                   queue_depth=depth))
        sched = CfqScheduler(sim, dev)
    else:
        dev = Ssd(sim)
        sched = NoopScheduler(sim, dev)
    predictor = MittCfq(MODEL) if mitt else None
    cache = PageCache(sim, cache_pages) if cache_pages else None
    os_ = OS(sim, dev, sched, cache=cache, predictor=predictor)
    return sim, os_, rec


def _span_events(rec):
    return rec.by_topic(SPAN_REQUEST)


def test_disk_read_span_partitions_observed_latency():
    sim, os_, rec = _traced_os()

    def gen():
        result = yield os_.read(0, 10 * GB, 4 * KB)
        return result

    result = run_process(sim, gen())
    (ev,) = _span_events(rec)
    assert ev.fields["outcome"] == "complete"
    assert check_span_invariant(ev.fields["stages"], ev.fields["total"])
    assert abs(ev.fields["total"] - result.latency) <= 1e-6
    assert set(ev.fields["stages"]) == {STAGE_SCHED_QUEUE,
                                        STAGE_DEVICE_QUEUE,
                                        STAGE_DEVICE_SERVICE}


def test_ssd_read_span_has_zero_device_queue():
    """SSD chip queueing is modeled analytically inside service time."""
    sim, os_, rec = _traced_os(device="ssd")

    def gen():
        result = yield os_.read(0, 10 * GB, 4 * KB)
        return result

    run_process(sim, gen())
    (ev,) = _span_events(rec)
    assert ev.fields["stages"][STAGE_DEVICE_QUEUE] == 0.0
    assert check_span_invariant(ev.fields["stages"], ev.fields["total"])


def test_cache_hit_span():
    sim, os_, rec = _traced_os(cache_pages=100)
    os_.cache.insert(0, 0, 4 * KB)

    def gen():
        result = yield os_.read(0, 0, 4 * KB)
        return result

    result = run_process(sim, gen())
    (ev,) = _span_events(rec)
    assert ev.fields["outcome"] == "cache-hit"
    assert set(ev.fields["stages"]) == {STAGE_SYSCALL, STAGE_CACHE}
    assert check_span_invariant(ev.fields["stages"], ev.fields["total"])
    assert ev.fields["total"] == result.latency


def test_fast_ebusy_span_is_syscall_only():
    sim, os_, rec = _traced_os(mitt=True)

    def gen():
        for i in range(6):
            os_.read(0, i * 10 * GB, 4096 * KB, pid=9)
        result = yield os_.read(0, 500 * GB, 4 * KB, pid=1,
                                deadline=5 * MS)
        return result

    result = run_process(sim, gen())
    assert is_ebusy(result)
    ebusy = [ev for ev in _span_events(rec)
             if ev.fields["outcome"] == "ebusy"]
    assert len(ebusy) == 1
    assert ebusy[0].fields["stages"] == {STAGE_SYSCALL:
                                         os_.params.ebusy_us}
    assert check_span_invariant(ebusy[0].fields["stages"],
                                ebusy[0].fields["total"])


def test_late_cancel_span_is_all_scheduler_queue():
    """MittCFQ bump-back: EBUSY arrives late, spent entirely queued."""
    sim, os_, rec = _traced_os(mitt=True, depth=1)

    def gen():
        os_.read(0, 0, 4 * KB, pid=9)
        ev = os_.read(0, 700 * GB, 4 * KB, pid=1, deadline=25 * MS)
        for i in range(20):
            os_.read(0, i * GB, 1024 * KB, pid=1)
        result = yield ev
        return result

    result = run_process(sim, gen())
    assert is_ebusy(result)
    assert os_.predictor.late_cancellations >= 1
    late = [ev for ev in _span_events(rec)
            if ev.fields["outcome"] == "late-cancel"]
    assert late
    for ev in late:
        assert set(ev.fields["stages"]) == {STAGE_SCHED_QUEUE}
        assert check_span_invariant(ev.fields["stages"], ev.fields["total"])


# -- whole-scenario invariants ----------------------------------------------
def _assert_all_spans_partition(rec):
    spans = rec.by_topic(SPAN_REQUEST) + rec.by_topic(SPAN_OP)
    assert spans, "scenario recorded no span events"
    for ev in spans:
        stages = ev.fields["stages"]
        assert check_span_invariant(stages, ev.fields["total"]), \
            f"span sum {spans_sum(stages)} != total {ev.fields['total']}: " \
            f"{ev}"
        assert all(v >= 0.0 for v in stages.values()), ev


def test_fig3_replay_spans_all_partition():
    from repro.experiments.fig3 import replay_scenario
    rec = TraceRecorder()
    sim = Simulator(seed=7, recorder=rec)
    replay_scenario(sim)
    _assert_all_spans_partition(rec)


def test_chaos_replay_spans_all_partition():
    """Faulted scenario: timeouts, backoff, failover hops — still exact."""
    from repro.experiments.faultsweep import replay_scenario
    rec = TraceRecorder()
    sim = Simulator(seed=7, recorder=rec)
    replay_scenario(sim)
    _assert_all_spans_partition(rec)
    ops = rec.by_topic(SPAN_OP)
    assert ops
    # The chaos scenario forces retries: some op must show failover time.
    assert any("failover-hop" in ev.fields["stages"] or
               "timeout-wait" in ev.fields["stages"] for ev in ops)


def test_traced_runs_are_deterministic():
    """Same seed, same scenario -> byte-identical trace and event hash."""
    from repro.experiments.faultsweep import replay_scenario

    def run():
        rec = TraceRecorder(keep_events=False)
        sim = Simulator(seed=7, paranoid=True, recorder=rec)
        replay_scenario(sim)
        return rec.trace_digest(), sim.trace_hash(), rec.count

    assert run() == run()


def test_tracing_does_not_change_simulation_outcomes():
    """A recorder observes; it must never steer.  Counters and latencies
    of a traced run match the untraced run exactly."""
    from repro.experiments.common import (build_disk_cluster, make_strategy,
                                          run_clients)

    def run(recorder):
        sim = Simulator(seed=13, recorder=recorder)
        env = build_disk_cluster(sim, 3)
        strategy = make_strategy("mittos", env.cluster,
                                 deadline_us=20 * MS)
        rec = run_clients(env, strategy, n_clients=3, n_ops=15,
                          think_time_us=2 * MS, name="t",
                          limit_us=5 * SEC)
        return (sorted(rec.samples), strategy.failovers,
                [n.os.reads for n in env.nodes],
                [n.os.ebusy_returned for n in env.nodes],
                [n.os.scheduler.submitted for n in env.nodes])

    assert run(None) == run(TraceRecorder(keep_events=False))
