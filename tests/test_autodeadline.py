"""Tests of the automatic deadline controller (§8.1)."""

import pytest

from repro._units import KB, MS, SEC
from repro.mittos.autodeadline import DeadlineController


def test_validation():
    with pytest.raises(ValueError):
        DeadlineController(0)
    with pytest.raises(ValueError):
        DeadlineController(1000, target_rate=0)
    with pytest.raises(ValueError):
        DeadlineController(1000, step=1.0)


def test_no_adjustment_before_window_fills():
    ctl = DeadlineController(10 * MS, window=50)
    for _ in range(49):
        ctl.record(True)
    assert ctl.deadline_us == 10 * MS
    assert ctl.adjustments == []


def test_too_many_ebusy_relaxes_deadline():
    ctl = DeadlineController(10 * MS, target_rate=0.05, window=100)
    for _ in range(100):
        ctl.record(True)  # 100% EBUSY
    assert ctl.deadline_us > 10 * MS


def test_rare_ebusy_tightens_deadline():
    ctl = DeadlineController(10 * MS, target_rate=0.05, window=100)
    for _ in range(100):
        ctl.record(False)  # 0% EBUSY
    assert ctl.deadline_us < 10 * MS


def test_in_band_rate_is_left_alone():
    ctl = DeadlineController(10 * MS, target_rate=0.05, band=0.5,
                             window=100)
    for i in range(100):
        ctl.record(i < 5)  # exactly 5%
    assert ctl.deadline_us == 10 * MS


def test_bounds_are_respected():
    ctl = DeadlineController(1 * MS, window=10, min_us=500.0,
                             max_us=2 * MS)
    for _ in range(200):
        ctl.record(True)
    assert ctl.deadline_us == 2 * MS
    for _ in range(200):
        ctl.record(False)
    assert ctl.deadline_us == 500.0


def test_converges_on_a_synthetic_plant():
    """Deadline converges to where the plant's EBUSY rate ~= target.

    The plant: requests are EBUSY when the deadline is below their
    'required' latency, drawn from a fixed distribution whose p95 is
    20 ms — the controller should settle near that.
    """
    import random
    rng = random.Random(1)
    ctl = DeadlineController(2 * MS, target_rate=0.05, band=0.4,
                             window=200, step=1.15)
    for _ in range(20_000):
        required = rng.gauss(10 * MS, 5 * MS)
        ctl.record(required > ctl.deadline_us)
    # p95 of N(10ms, 5ms) ~ 18.2 ms; allow a generous band.
    assert 12 * MS < ctl.deadline_us < 30 * MS


def test_controller_drives_the_mittos_strategy(sim):
    """End to end: the strategy reads the controller's live deadline."""
    from repro.experiments.common import build_disk_cluster, make_strategy
    from repro.experiments.common import run_clients
    env = build_disk_cluster(sim, 6)
    env.injectors[0].disk_read_threads(n_threads=4, size=256 * KB,
                                       until_us=60 * SEC)
    ctl = DeadlineController(2 * MS, target_rate=0.05, window=50)
    strategy = make_strategy("mittos", env.cluster, deadline_us=None,
                             controller=ctl)
    rec = run_clients(env, strategy, 4, 150, think_time_us=2 * MS,
                      limit_us=60 * SEC)
    # The initial 2 ms deadline is absurdly strict for a disk: the
    # controller must have relaxed it.
    assert ctl.deadline_us > 2 * MS
    assert len(ctl.adjustments) >= 1
    assert len(rec) == 600
