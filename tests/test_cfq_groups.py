"""Tests of CFQ cgroup support (weighted group time slices)."""

from repro._units import GB, KB
from repro.devices import BlockRequest, Disk, DiskParams, IoClass, IoOp
from repro.kernel import CfqScheduler
from repro.kernel.cfq import group_quantum


def _quiet_disk(sim, depth=1):
    return Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=depth))


def _req(offset, pid=1, cgroup=0, ioclass=IoClass.BE, priority=4):
    req = BlockRequest(IoOp.READ, offset, 4 * KB, pid=pid,
                       ioclass=ioclass, priority=priority)
    req.tag["cgroup"] = cgroup
    return req


def test_group_quantum_scales_with_weight():
    assert group_quantum(2.0) == 2 * group_quantum(1.0)
    assert group_quantum(0.01) >= 1


def test_single_group_behaviour_unchanged(sim):
    """Default (all requests in group 0) must behave like classic CFQ."""
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    order = []
    for i, offset in enumerate((5 * GB, 1 * GB, 3 * GB)):
        req = _req(offset)
        req.add_callback(lambda r, i=i: order.append(i))
        sched.submit(req)
    sim.run()
    assert order == [1, 2, 0]  # offset-sorted within the node


def test_groups_share_proportionally_to_weight(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk, group_weights={1: 2.0, 2: 1.0})
    sched.submit(_req(0))
    completions = []
    for g in (1, 2):
        for k in range(group_quantum(2.0) + 2):
            req = _req((10 * g + k) * GB, pid=g, cgroup=g)
            req.add_callback(lambda r: completions.append(
                r.tag["cgroup"]))
            sched.submit(req)
    sim.run()
    # First full turn: the weight-2 group dispatches twice the quantum of
    # the weight-1 group.
    q1, q2 = group_quantum(2.0), group_quantum(1.0)
    assert completions[:q1] == [1] * q1
    assert completions[q1:q1 + q2] == [2] * q2


def test_rt_priority_is_within_group_not_global(sim):
    """An RT IO jumps its own group's queue, not other groups' turns."""
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    order = []
    be_own = _req(1 * GB, pid=1, cgroup=1, ioclass=IoClass.BE)
    rt_own = _req(2 * GB, pid=2, cgroup=1, ioclass=IoClass.RT)
    for tag, req in (("be", be_own), ("rt", rt_own)):
        req.add_callback(lambda r, tag=tag: order.append(tag))
        sched.submit(req)
    sim.run()
    assert order == ["rt", "be"]


def test_weight_update_takes_effect(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.set_group_weight(5, 3.0)
    sched.submit(_req(0))
    req = _req(1 * GB, cgroup=5)
    sched.submit(req)
    assert sched._groups[5].weight == 3.0


def test_requests_ahead_of_counts_other_groups_share(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk, group_weights={9: 1.0})
    sched.submit(_req(0))
    # Flood group 9 with many IOs; a probe in group 0 only waits for one
    # group-turn's worth of them per rotation.
    for k in range(20):
        sched.submit(_req((k + 1) * GB, pid=9, cgroup=9))
    probe = _req(500 * GB, pid=1, cgroup=0)
    ahead = sched.requests_ahead_of(probe)
    assert 0 < len(ahead) <= group_quantum(1.0)


def test_group_cleanup_when_drained(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    sched.submit(_req(1 * GB, cgroup=7))
    sim.run()
    assert 7 not in sched._groups
    assert sched.queued == 0


def test_cancel_across_groups(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    victim = _req(1 * GB, cgroup=3)
    sched.submit(victim)
    assert sched.cancel(victim) is True
    sim.run()
    assert victim.cancelled
    assert disk.completed == 1


def test_process_count_spans_groups(sim):
    disk = _quiet_disk(sim)
    sched = CfqScheduler(sim, disk)
    sched.submit(_req(0))
    sched.submit(_req(1 * GB, pid=1, cgroup=1))
    sched.submit(_req(2 * GB, pid=2, cgroup=2))
    assert sched.process_count() == 2
