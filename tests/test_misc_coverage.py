"""Remaining behaviours: crash plumbing, race helpers, fault stacking."""

import pytest

from repro._units import GB, KB, MS

from repro.sim import Simulator


def test_defuse_suppresses_crash_report(sim):
    ev = sim.event()
    ev.fail(ValueError("x"))
    sim.defuse(ev)
    sim.schedule(1, lambda: None)
    sim.run()  # no ProcessCrashed raised


def test_handle_ordering_is_stable_for_equal_times(sim):
    from repro.sim.core import Handle
    a = Handle(5.0, 1, 1, None, ())
    b = Handle(5.0, 2, 2, None, ())
    assert a < b and not (b < a)


def test_schedule_at_exact_now_runs(sim):
    ran = []
    sim.schedule_at(0.0, lambda: ran.append(1))
    sim.run()
    assert ran == [1]


def test_strategy_race_returns_eio_marker_on_timeout(sim):
    from repro.experiments.common import build_disk_cluster, make_strategy
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("base", env.cluster)

    def gen():
        slow = sim.timeout(1000.0, "late")
        finished, value = yield from strategy._race(slow, 10.0)
        return finished, value

    proc = sim.process(gen())
    sim.run()
    finished, value = proc.value
    assert finished is False and value is None


def test_mittcache_fault_injection_on_unstacked_guard(sim):
    import random
    from repro.devices import Disk, DiskParams
    from repro.kernel import CfqScheduler, OS, PageCache
    from repro.mittos import FaultInjector, MittCache
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    fault = FaultInjector(random.Random(1), false_positive_rate=1.0)
    predictor = MittCache(fault_injector=fault)
    os_ = OS(sim, disk, CfqScheduler(sim, disk),
             cache=PageCache(sim, 10), predictor=predictor)
    from repro.errors import is_ebusy
    # Even a generous deadline gets flipped to EBUSY at 100% FP rate.
    assert is_ebusy(os_.addrcheck(0, 0, 4 * KB, deadline=1000 * MS))


def test_mmap_engine_addrcheck_default_follows_cache():
    from repro.devices import Disk, DiskParams
    from repro.engines import KeySpace, MMapEngine
    from repro.kernel import CfqScheduler, OS, PageCache
    sim = Simulator(seed=1)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    ks = KeySpace(100, span_bytes=1 * GB)
    without_cache = MMapEngine(
        OS(sim, disk, CfqScheduler(sim, disk)), ks)
    assert without_cache.use_addrcheck is False
    disk2 = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    with_cache = MMapEngine(
        OS(sim, disk2, CfqScheduler(sim, disk2),
           cache=PageCache(sim, 10)), ks)
    assert with_cache.use_addrcheck is True


def test_reduction_curve_rejects_nothing_but_handles_flat_lines():
    from repro.metrics.latency import LatencyRecorder
    from repro.metrics.reduction import reduction_curve
    a, b = LatencyRecorder(), LatencyRecorder()
    for _ in range(50):
        a.add(10.0)
        b.add(5.0)
    curve = reduction_curve(a, b, lo=90, hi=99, step=3)
    assert all(r == pytest.approx(50.0) for _, r in curve)


def test_tiered_stack_counts_reads_and_ebusy(sim):
    from tests.test_flashcache_tiered import _tiers
    from repro.kernel import PageCache
    from repro.kernel.tiered import TieredStack
    flash, disk_os, _ = _tiers(sim)
    stack = TieredStack(sim, PageCache(sim, 16), flash)
    for i in range(6):
        disk_os.read(0, i * 100 * GB, 2048 * KB, pid=9)

    def gen():
        yield stack.read(0, 77 * GB, 4 * KB, deadline=5 * MS)

    proc = sim.process(gen())
    sim.run()
    assert stack.reads == 1
    assert stack.ebusy_returned == 1


def test_experiment_result_to_dict_roundtrips_via_json():
    import json
    from repro.experiments.common import ExperimentResult
    result = ExperimentResult("figX", "demo")
    result.add_table("h", ["a", "b"], [[1, 2.5], ["x", 0]])
    result.add_note("note")
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["tables"][0]["rows"][0] == [1, 2.5]
    assert payload["notes"] == ["note"]


def test_eio_sentinel_used_for_exhausted_strategies(sim):
    """Every strategy returns a value (never raises) when all fail."""
    from repro.cluster.strategies.base import Strategy
    from repro.experiments.common import build_disk_cluster
    env = build_disk_cluster(sim, 3)
    strategy = Strategy(env.cluster)
    with pytest.raises(NotImplementedError):
        next(strategy._run(1, env.nodes, strategy._op_context()))
