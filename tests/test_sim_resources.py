"""Tests of the counting semaphore (node CPU model)."""

import pytest

from repro.sim.resources import Semaphore


def test_semaphore_requires_positive_slots(sim):
    with pytest.raises(ValueError):
        Semaphore(sim, 0)


def test_acquire_within_capacity_is_immediate(sim):
    sem = Semaphore(sim, 2)
    a = sem.acquire()
    b = sem.acquire()
    assert a.triggered and b.triggered
    assert sem.in_use == 2


def test_acquire_over_capacity_waits_for_release(sim):
    sem = Semaphore(sim, 1)
    sem.acquire()
    waiter = sem.acquire()
    assert not waiter.triggered
    assert sem.queued == 1
    sem.release()
    assert waiter.triggered
    assert sem.in_use == 1  # slot transferred, not freed


def test_release_without_acquire_raises(sim):
    with pytest.raises(RuntimeError):
        Semaphore(sim, 1).release()


def test_fifo_handoff_order(sim):
    sem = Semaphore(sim, 1)
    sem.acquire()
    order = []
    for i in range(3):
        sem.acquire().add_callback(lambda e, i=i: order.append(i))
    for _ in range(3):
        sem.release()
    assert order == [0, 1, 2]


def test_cpu_contention_serializes_work(sim):
    """12 handlers on 8 slots: the queueing the paper saw in §7.5."""
    sem = Semaphore(sim, 8)
    finish_times = []

    def handler():
        yield sem.acquire()
        yield 100  # 100 us of CPU
        sem.release()
        finish_times.append(sim.now)

    for _ in range(12):
        sim.process(handler())
    sim.run()
    assert sorted(finish_times)[:8] == [100] * 8
    assert sorted(finish_times)[8:] == [200] * 4
