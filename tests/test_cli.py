"""Tests of the experiments CLI."""

import pytest

from repro.experiments.__main__ import main


def test_list_prints_all_ids(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("table1", "fig5", "fig13", "writes"):
        assert exp_id in out


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["fig99"])


def test_runs_a_cheap_experiment(capsys):
    assert main(["writes", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "writes" in out
    assert "NoNoise" in out


def test_plot_flag(capsys):
    assert main(["fig5", "--seed", "3", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5a" in out
    assert "*=base" in out  # the ASCII plot legend


def test_json_export(tmp_path, capsys):
    import json
    out = tmp_path / "results.jsonl"
    assert main(["writes", "--seed", "3", "--json", str(out)]) == 0
    capsys.readouterr()
    lines = out.read_text().splitlines()
    assert len(lines) == 1
    payload = json.loads(lines[0])
    assert payload["experiment"] == "writes"
    assert payload["tables"][0]["headers"][0] == "line"
