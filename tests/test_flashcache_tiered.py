"""Tests of the bcache-style flash cache and the three-tier stack."""

import pytest

from repro._units import GB, KB, MS
from repro.devices import Disk, DiskParams, Ssd, SsdGeometry
from repro.devices.disk_profile import profile_disk
from repro.devices.ssd_profile import SsdLatencyModel
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, NoopScheduler, OS, PageCache
from repro.kernel.flashcache import FlashCache
from repro.kernel.tiered import TieredStack
from repro.mittos import MittCfq, MittSsd
from tests.conftest import run_process

MODEL = profile_disk(lambda sim: Disk(sim, DiskParams(
    jitter_frac=0.0, hiccup_prob=0.0)))


def _tiers(sim, capacity_mb=4):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    disk_os = OS(sim, disk, CfqScheduler(sim, disk),
                 predictor=MittCfq(MODEL))
    ssd = Ssd(sim, SsdGeometry(jitter_frac=0.0))
    ssd_os = OS(sim, ssd, NoopScheduler(sim, ssd),
                predictor=MittSsd(ssd, SsdLatencyModel.from_spec(
                    ssd.geometry)))
    flash = FlashCache(sim, ssd_os, disk_os,
                       capacity_bytes=capacity_mb << 20)
    return flash, disk_os, ssd_os


def _read(sim, flash, offset, deadline=None):
    def gen():
        result = yield flash.read(0, offset, 4 * KB, deadline=deadline)
        return result

    return run_process(sim, gen())


def test_capacity_validated(sim):
    with pytest.raises(ValueError):
        _t = FlashCache(sim, None, None, capacity_bytes=0)


def test_cold_read_goes_to_disk(sim):
    flash, disk_os, ssd_os = _tiers(sim)
    result = _read(sim, flash, 10 * GB)
    assert result.latency > 1 * MS  # disk speed
    assert flash.misses == 1 and flash.hits == 0


def test_hot_extent_promoted_then_served_from_ssd(sim):
    flash, disk_os, ssd_os = _tiers(sim)
    for _ in range(flash.promote_threshold):
        _read(sim, flash, 10 * GB)
    assert flash.promotions == 1
    result = _read(sim, flash, 10 * GB)
    assert flash.hits == 1
    assert result.latency < 1 * MS  # flash speed


def test_promotion_write_is_background(sim):
    flash, disk_os, ssd_os = _tiers(sim)
    before = sim.now
    for _ in range(flash.promote_threshold):
        _read(sim, flash, 10 * GB)
    # Foreground latency of the promoting read is still disk-speed only
    # (no extra ~1ms program time was serialized into it).
    assert ssd_os.scheduler.submitted == 1  # the promotion write


def test_eviction_respects_capacity(sim):
    flash, _, _ = _tiers(sim, capacity_mb=1)  # 16 extents of 64 KB
    for i in range(40):
        for _ in range(flash.promote_threshold):
            _read(sim, flash, i * (1 << 20))
    assert flash.cached_extents <= flash.capacity_extents


def test_invalidate_drops_extents(sim):
    flash, _, _ = _tiers(sim)
    for _ in range(flash.promote_threshold):
        _read(sim, flash, 10 * GB)
    assert flash.cached(10 * GB, 4 * KB)
    flash.invalidate(10 * GB, 4 * KB)
    assert not flash.cached(10 * GB, 4 * KB)


def test_ssd_deadline_guards_flash_hits(sim):
    flash, disk_os, ssd_os = _tiers(sim)
    for _ in range(flash.promote_threshold):
        _read(sim, flash, 10 * GB)
    # Park the SSD chips; a flash-tier read with a tight deadline rejects.
    for chip in range(ssd_os.device.geometry.n_chips):
        ssd_os.device.erase_block(chip)
    result = _read(sim, flash, 10 * GB, deadline=1 * MS)
    assert is_ebusy(result)


def test_disk_deadline_guards_misses(sim):
    flash, disk_os, _ = _tiers(sim)
    for i in range(6):
        disk_os.read(0, i * 100 * GB, 2048 * KB, pid=9)
    result = _read(sim, flash, 77 * GB, deadline=5 * MS)
    assert is_ebusy(result)


# -- the three-tier stack -------------------------------------------------

def _stack(sim):
    flash, disk_os, ssd_os = _tiers(sim)
    page_cache = PageCache(sim, 256)
    stack = TieredStack(sim, page_cache, flash)
    return stack, flash, disk_os, ssd_os


def test_page_cache_tier_hits_in_memory(sim):
    stack, flash, _, _ = _stack(sim)
    stack.page_cache.insert(0, 0, 4 * KB)

    def gen():
        result = yield stack.read(0, 0, 4 * KB, deadline=0.5 * MS)
        return result

    result = run_process(sim, gen())
    assert result.cache_hit
    assert flash.hits == flash.misses == 0


def test_miss_fills_page_cache_through_tiers(sim):
    stack, flash, _, _ = _stack(sim)

    def gen():
        first = yield stack.read(0, 10 * GB, 4 * KB)
        second = yield stack.read(0, 10 * GB, 4 * KB)
        return first, second

    first, second = run_process(sim, gen())
    assert not first.cache_hit
    assert second.cache_hit


def test_tiered_ebusy_propagates(sim):
    stack, flash, disk_os, _ = _stack(sim)
    for i in range(6):
        disk_os.read(0, i * 100 * GB, 2048 * KB, pid=9)

    def gen():
        result = yield stack.read(0, 77 * GB, 4 * KB, deadline=5 * MS)
        return result

    assert is_ebusy(run_process(sim, gen()))
    assert stack.ebusy_returned == 1


def test_tiered_addrcheck_uses_the_right_floor(sim):
    stack, flash, _, ssd_os = _stack(sim)
    # Promote an extent to flash: its floor is the 100us page read.
    # (Warm through the flash tier directly — the page cache would absorb
    # repeat reads before they could train the promotion counter.)
    def warm():
        for _ in range(flash.promote_threshold):
            result = yield flash.read(0, 10 * GB, 4 * KB)
            assert not is_ebusy(result)

    run_process(sim, warm())
    # 0.5ms deadline: satisfiable from flash (100us floor) ...
    assert stack.addrcheck(0, 10 * GB, 4 * KB, deadline=0.5 * MS) is True
    # ... but not from disk (≳2ms floor) for a cold extent.
    assert is_ebusy(stack.addrcheck(0, 500 * GB, 4 * KB,
                           deadline=0.5 * MS))
