"""Tests of the OpenChannel SSD model."""

import pytest

from repro._units import KB, MS
from repro.devices import BlockRequest, IoOp, Ssd, SsdGeometry
from repro.devices.ssd import program_pattern


def _quiet_geometry(**kw):
    defaults = dict(jitter_frac=0.0)
    defaults.update(kw)
    return SsdGeometry(**defaults)


def run_io(sim, ssd, req):
    req.submit_time = sim.now
    done = sim.event()
    req.add_callback(lambda r: done.try_succeed())
    ssd.submit(req)
    sim.run_until(done)
    return req.latency


def test_program_pattern_shape():
    pattern = program_pattern(512)
    assert len(pattern) == 512
    # Paper: "1ms write time for pages #0-6, 2ms for page #7, 1ms for #8-9"
    assert pattern[:7] == [1 * MS] * 7 or pattern[:6] == [1 * MS] * 6
    assert pattern[0] == 1 * MS
    assert pattern[6] == 2 * MS or pattern[7] == 2 * MS
    # tail "...2112"
    assert pattern[-4:] == [2 * MS, 1 * MS, 1 * MS, 2 * MS]
    assert set(pattern) == {1 * MS, 2 * MS}


def test_geometry_defaults_match_paper_device():
    geo = SsdGeometry()
    assert geo.n_channels == 16
    assert geo.n_chips == 128  # 16 channels x 8 chips
    assert geo.page_size == 16 * KB
    assert geo.page_read_us == 100.0
    assert geo.erase_us == 6 * MS


def test_single_page_read_takes_100us(sim):
    ssd = Ssd(sim, _quiet_geometry())
    latency = run_io(sim, ssd, BlockRequest(IoOp.READ, 0, 16 * KB))
    assert latency == pytest.approx(100.0)


def test_multi_page_read_parallelizes_across_chips(sim):
    ssd = Ssd(sim, _quiet_geometry())
    # 8 pages stripe over 8 chips on 1 channel: serialized only by the
    # 60us channel transfers.
    latency = run_io(sim, ssd, BlockRequest(IoOp.READ, 0, 128 * KB))
    assert latency < 8 * 100.0
    assert latency >= 100.0 + 7 * 60.0


def test_reads_to_distinct_channels_do_not_queue(sim):
    """Paper: ten IOs to ten separate channels create no queueing."""
    geo = _quiet_geometry()
    ssd = Ssd(sim, geo)
    reqs = []
    # chips 0 and 8 are on different channels (8 chips per channel).
    for chip in (0, 8):
        req = BlockRequest(IoOp.READ, chip * geo.page_size, geo.page_size)
        req.submit_time = 0.0
        ssd.submit(req)
        reqs.append(req)
    sim.run()
    for req in reqs:
        assert req.latency == pytest.approx(100.0)


def test_reads_to_same_chip_queue_fifo(sim):
    geo = _quiet_geometry()
    ssd = Ssd(sim, geo)
    same_chip = geo.n_chips  # lpn n_chips maps back to chip 0
    first = BlockRequest(IoOp.READ, 0, geo.page_size)
    second = BlockRequest(IoOp.READ, same_chip * geo.page_size,
                          geo.page_size)
    for req in (first, second):
        req.submit_time = 0.0
        ssd.submit(req)
    sim.run()
    assert first.latency == pytest.approx(100.0)
    assert second.latency > first.latency


def test_write_uses_program_pattern_times(sim):
    geo = _quiet_geometry()
    ssd = Ssd(sim, geo)
    latency = run_io(sim, ssd, BlockRequest(IoOp.WRITE, 0, geo.page_size))
    # first page of a block is a lower page: 1 ms (+ channel transfer).
    assert latency == pytest.approx(1 * MS, rel=0.1)


def test_read_after_write_goes_to_mapped_chip(sim):
    geo = _quiet_geometry(n_channels=2, chips_per_channel=2)
    ssd = Ssd(sim, geo)
    lpn = 7
    run_io(sim, ssd, BlockRequest(IoOp.WRITE, lpn * geo.page_size,
                                  geo.page_size))
    mapped = ssd.read_chip_of(lpn)
    assert mapped == 0  # first round-robin allocation goes to chip 0
    # and an unwritten page still uses the striped default:
    assert ssd.read_chip_of(lpn + 1) == (lpn + 1) % geo.n_chips


def test_erase_parks_chip_for_6ms(sim):
    geo = _quiet_geometry()
    ssd = Ssd(sim, geo)
    ssd.erase_block(0)
    req = BlockRequest(IoOp.READ, 0, geo.page_size)  # lpn 0 -> chip 0
    latency = run_io(sim, ssd, req)
    assert latency >= 6 * MS


def test_gc_triggers_when_blocks_exhaust(sim):
    geo = _quiet_geometry(n_channels=1, chips_per_channel=1,
                          blocks_per_chip=4, pages_per_block=8)
    ssd = Ssd(sim, geo)

    def writer():
        for i in range(64):
            req = BlockRequest(IoOp.WRITE, (i % 8) * geo.page_size,
                               geo.page_size)
            done = sim.event()
            req.add_callback(lambda r: done.try_succeed())
            ssd.submit(req)
            yield done

    sim.process(writer())
    sim.run()
    assert ssd.gc_runs > 0
    assert ssd.completed == 64


def test_predict_write_placement_matches_reality(sim):
    geo = _quiet_geometry(n_channels=2, chips_per_channel=2)
    ssd = Ssd(sim, geo)
    predicted = ssd.predict_write_placement(4)
    # Execute 4 page writes and compare the FTL's actual placement.
    for i, (chip, _) in enumerate(predicted):
        run_io(sim, ssd, BlockRequest(IoOp.WRITE, (100 + i) * geo.page_size,
                                      geo.page_size))
        assert ssd.read_chip_of(100 + i) == chip


def test_op_observer_sees_enqueue_and_complete(sim):
    geo = _quiet_geometry()
    ssd = Ssd(sim, geo)
    events = []
    ssd.add_op_observer(lambda kind, chip, dur, op: events.append(
        (kind, chip, dur, op)))
    run_io(sim, ssd, BlockRequest(IoOp.READ, 0, geo.page_size))
    assert ("enqueue", 0, 100.0, "read") in events
    assert ("complete", 0, 0.0, "done") in events


def test_channel_serialization_ground_truth(sim):
    """N concurrent reads behind one channel pay ~60us each in turn."""
    geo = _quiet_geometry()
    ssd = Ssd(sim, geo)
    reqs = []
    for chip in range(4):  # chips 0-3 share channel 0
        req = BlockRequest(IoOp.READ, chip * geo.page_size, geo.page_size)
        req.submit_time = 0.0
        ssd.submit(req)
        reqs.append(req)
    sim.run()
    latencies = sorted(r.latency for r in reqs)
    assert latencies[0] == pytest.approx(100.0)
    assert latencies[-1] == pytest.approx(100.0 + 3 * 60.0, rel=0.05)
