"""Integration: SSD and cache paths cut tails end-to-end (§7.1 c/d)."""

from repro._units import KB, MS, SEC
from repro.experiments.common import (build_cache_cluster,
                                      build_ssd_cluster, make_strategy,
                                      run_clients)
from repro.sim import Simulator


def _run_ssd(strategy_name, noisy, deadline=None, seed=12):
    sim = Simulator(seed=seed)
    env = build_ssd_cluster(sim, 3, n_keys=3000)
    env.cluster.primary_fn = lambda key: 0
    if noisy:
        env.injectors[0].ssd_write_threads(n_threads=2, size=256 * KB,
                                           until_us=60 * SEC)
        env.injectors[0].ssd_erase_noise(rate_per_sec=400,
                                         until_us=60 * SEC)
    strategy = make_strategy(strategy_name, env.cluster,
                             deadline_us=deadline)
    return run_clients(env, strategy, n_clients=3, n_ops=150,
                       think_time_us=0.5 * MS, limit_us=60 * SEC)


def test_ssd_noise_inflates_tail_and_mittssd_cuts_it():
    quiet = _run_ssd("base", noisy=False)
    noisy = _run_ssd("base", noisy=True)
    mitt = _run_ssd("mittos", noisy=True, deadline=2 * MS)
    assert noisy.p(95) > 2 * quiet.p(95)
    assert mitt.p(95) < noisy.p(95)


def _run_cache(strategy_name, noisy, deadline=None, seed=13):
    sim = Simulator(seed=seed)
    env = build_cache_cluster(sim, 3, n_keys=2000)
    env.cluster.primary_fn = lambda key: 0
    if noisy:
        env.injectors[0].periodic_cache_eviction(fraction=0.2,
                                                 period_us=300 * MS,
                                                 until_us=60 * SEC)
    strategy = make_strategy(strategy_name, env.cluster,
                             deadline_us=deadline)
    return run_clients(env, strategy, n_clients=3, n_ops=150,
                       think_time_us=1 * MS, limit_us=60 * SEC)


def test_cache_eviction_inflates_tail_and_mittcache_cuts_it():
    quiet = _run_cache("base", noisy=False)
    noisy = _run_cache("base", noisy=True)
    mitt = _run_cache("mittos", noisy=True, deadline=0.5 * MS)
    # ~20% misses: the Base p90 shows multi-ms page faults.
    assert noisy.p(90) > 3 * quiet.p(90)
    # MittCache keeps p90 within ~2 extra hops of the all-hit case.
    assert mitt.p(90) < 2.0  # ms
