"""Kernel-equivalence goldens — the safety net under the speed rewrite.

The sim-kernel hot loop (fused timeout fast path, flattened ``run()``,
tuple heap entries) is pure mechanism: it must never change *what* a
simulation computes, only how fast.  This suite pins that contract to
goldens captured from the pre-refactor kernel: for each registered
scenario x seed x tie-policy cell it asserts

* the paranoid trace hash (every executed ``(time, seq, qualname)``
  record) is byte-identical,
* per-stream RNG draw counts match exactly, and
* the canonical timeline digest (tie-insensitive grouped view shared
  with ``repro.analysis races``) matches,

including under ``ShuffledTies`` salts, so the rewrite cannot hide a
behaviour change behind the FIFO tie-break.

Regenerate (only for an *intentional* behaviour change, never to paper
over a kernel-refactor diff)::

    PYTHONPATH=src python tests/test_kernel_equivalence.py regen
"""

import json
import os

import pytest

from repro.analysis.races import _run_once

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "fixtures",
                            "kernel_goldens.json")

#: (scenario id, seed, salt) cells; salt None = FIFO tie-break.
CELLS = [
    ("fig3", 7, None),
    ("fig3", 7, 3),
    ("fig3", 11, None),
    ("chaos", 7, None),
    ("chaos", 7, 1),
    ("chaos", 7, 2),
    ("chaos", 11, None),
    ("slosweep", 7, None),
    ("slosweep", 7, 5),
]


def _cell_key(scenario_id, seed, salt):
    return f"{scenario_id}/seed={seed}/salt={salt}"


def _capture(scenario_id, seed, salt):
    """One cell's observable kernel behaviour, as a JSON-stable dict."""
    from repro.experiments.registry import get_scenario

    scenario = get_scenario(scenario_id)
    run = _run_once(scenario, seed=seed, salt=salt)
    return {
        "canonical_digest": run.digest,
        "bus_digest": run.bus_digest,
        "rng_draws": run.rng_draws,
        "events": len(run.ordered),
    }


def _capture_paranoid_hash(scenario_id, seed, salt):
    """The raw sanitizer hash of one un-traced paranoid run."""
    from repro.experiments.registry import get_scenario
    from repro.sim import ShuffledTies, Simulator

    policy = None if salt is None else ShuffledTies(salt)
    sim = Simulator(seed=seed, paranoid=True, tie_policy=policy)
    get_scenario(scenario_id)(sim)
    sim.run()
    return sim.trace_hash()


def load_goldens():
    with open(GOLDENS_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def goldens():
    return load_goldens()


@pytest.mark.parametrize("scenario_id,seed,salt", CELLS,
                         ids=[_cell_key(*cell) for cell in CELLS])
def test_kernel_matches_prerefactor_golden(goldens, scenario_id, seed, salt):
    key = _cell_key(scenario_id, seed, salt)
    want = goldens[key]
    got = _capture(scenario_id, seed, salt)
    assert got["events"] == want["events"], \
        f"{key}: executed-event count drifted"
    assert got["rng_draws"] == want["rng_draws"], \
        f"{key}: per-stream RNG draw counts drifted"
    assert got["canonical_digest"] == want["canonical_digest"], \
        f"{key}: canonical timeline diverged from the pre-refactor kernel"
    assert got["bus_digest"] == want["bus_digest"], \
        f"{key}: raw TraceBus stream diverged"


@pytest.mark.parametrize("scenario_id,seed,salt",
                         [c for c in CELLS if c[2] is None],
                         ids=[_cell_key(*c) for c in CELLS if c[2] is None])
def test_paranoid_hash_matches_prerefactor_golden(goldens, scenario_id,
                                                  seed, salt):
    key = _cell_key(scenario_id, seed, salt)
    want = goldens[key]["paranoid_hash"]
    assert _capture_paranoid_hash(scenario_id, seed, salt) == want, \
        f"{key}: paranoid (time, seq, qualname) trace hash diverged"


def regen():
    payload = {}
    for scenario_id, seed, salt in CELLS:
        key = _cell_key(scenario_id, seed, salt)
        payload[key] = _capture(scenario_id, seed, salt)
        if salt is None:
            payload[key]["paranoid_hash"] = _capture_paranoid_hash(
                scenario_id, seed, salt)
        print(f"{key}: {payload[key]['canonical_digest']}")
    with open(GOLDENS_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[goldens -> {GOLDENS_PATH}]")


if __name__ == "__main__":
    import sys

    if len(sys.argv) > 1 and sys.argv[1] == "regen":
        regen()
    else:
        print(__doc__)
