"""Tie-order perturbation harness: planted races must be caught and
pinpointed; tie-insensitive scenarios must stay green."""

import pytest

from repro.analysis.races import perturb_ties
from repro.analysis.__main__ import main as analysis_main
from repro.errors import SimulationError
from repro.sim import ShuffledTies, Simulator


class PlantedRace:
    """A deliberate tie-ordering race: writer and reader tied at t=10.

    The writer sets a flag; the reader schedules ``_hit`` (flag seen) or
    ``_miss`` (flag unseen) at t=15.  Under FIFO the writer — scheduled
    first — always wins, so the race is invisible to plain replay; any
    salt that flips the tie makes the reader run first and the t=15
    callback change identity.
    """

    def __call__(self, sim):
        self.flag = False
        self.outcome = None
        sim.schedule_at(10.0, self._writer)
        sim.schedule_at(10.0, self._reader, sim)

    def _writer(self):
        self.flag = True

    def _reader(self, sim):
        sim.schedule_at(sim.now + 5.0,
                        self._hit if self.flag else self._miss)

    def _hit(self):
        self.outcome = "hit"

    def _miss(self):
        self.outcome = "miss"


def tie_free_scenario(sim):
    """Four same-time callbacks whose effects commute: no race."""
    for delay in (10.0, 10.0, 10.0, 10.0):
        sim.schedule_at(delay, _leaf_a, sim)
        sim.schedule_at(delay, _leaf_b, sim)


def _leaf_a(sim):
    sim.rng("analysis/leaf_a").random()


def _leaf_b(sim):
    sim.rng("analysis/leaf_b").random()


def test_planted_race_is_detected_and_pinpointed():
    report = perturb_ties(PlantedRace(), seed=3, perturbations=8)
    assert not report.ok
    # With 8 independent salts the odds every one preserves FIFO order
    # are 2^-8; deterministically, several flip.
    assert len(report.divergences) >= 1
    for div in report.divergences:
        # The first *canonical* divergence is the downstream effect: the
        # t=15 callback changed identity.
        assert div.time == 15.0
        assert any(rec.endswith("_hit") for rec in div.baseline_only)
        assert any(rec.endswith("_miss") for rec in div.perturbed_only)
        # The racing pair is the tied writer/reader at t=10: baseline ran
        # the writer first (FIFO), the perturbed run flipped the tie.
        (time_a, site_a), (time_b, site_b) = div.race_sites
        assert time_a == time_b == 10.0
        assert site_a.endswith("_writer")
        assert site_b.endswith("_reader")


def test_divergence_render_names_both_sites():
    report = perturb_ties(PlantedRace(), seed=3, perturbations=8)
    text = report.render()
    assert "DIVERGED at t=15.0" in text
    assert "_writer" in text and "_reader" in text
    assert "racing callbacks" in text
    assert "divergent perturbation" in text


def test_tie_free_scenario_stays_green():
    report = perturb_ties(tie_free_scenario, seed=3, perturbations=8)
    assert report.ok, report.render()
    assert len(report.runs) == 8
    # The perturbation genuinely permuted same-time execution order in at
    # least one run — ok means the *canonical* timeline was unaffected,
    # not that nothing moved.
    assert any(run.ordered != report.baseline.ordered
               for run in report.runs)
    assert all(run.digest == report.baseline.digest
               for run in report.runs)
    assert "no tie-ordering races detected" in report.render()


def test_scenario_state_is_reset_per_run():
    scenario = PlantedRace()
    report = perturb_ties(scenario, seed=3, perturbations=2)
    assert report.scenario == "PlantedRace"
    assert len(report.runs) == 2


# -- Simulator(tie_policy=...) knob ----------------------------------------

def _run_order(tie_policy):
    order = []
    sim = Simulator(tie_policy=tie_policy)
    for name in ("a", "b", "c", "d", "e"):
        sim.schedule_at(10.0, order.append, name)
    sim.schedule_at(20.0, order.append, "late")
    sim.run()
    return order


def test_default_tie_break_is_fifo():
    assert _run_order(None) == ["a", "b", "c", "d", "e", "late"]
    assert _run_order("fifo") == ["a", "b", "c", "d", "e", "late"]


def test_shuffled_ties_permute_same_time_events_only():
    orders = {salt: _run_order(ShuffledTies(salt)) for salt in range(6)}
    assert any(order[:5] != ["a", "b", "c", "d", "e"]
               for order in orders.values())
    for order in orders.values():
        assert sorted(order[:5]) == ["a", "b", "c", "d", "e"]
        assert order[5] == "late"  # distinct times never reorder


def test_shuffled_ties_are_reproducible():
    assert _run_order(ShuffledTies(4)) == _run_order(ShuffledTies(4))
    assert _run_order(4) == _run_order(ShuffledTies(4))  # int shorthand


def test_bad_tie_policy_rejected():
    with pytest.raises(SimulationError):
        Simulator(tie_policy="random")
    with pytest.raises(SimulationError):
        Simulator(tie_policy=3.5)


# -- CLI -------------------------------------------------------------------

def test_cli_lists_scenarios(capsys):
    assert analysis_main(["races", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "faultsweep" in out


def test_cli_unknown_scenario_errors(capsys):
    with pytest.raises(SystemExit):
        analysis_main(["races", "--scenario", "nope"])
    capsys.readouterr()


def test_cli_fig3_smoke_is_race_free(capsys):
    assert analysis_main(["races", "--scenario", "fig3",
                          "--perturbations", "2"]) == 0
    out = capsys.readouterr().out
    assert "no tie-ordering races detected" in out
