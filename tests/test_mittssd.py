"""Tests of MittSSD per-chip prediction."""

import pytest

from repro._units import KB, MS
from repro.devices import BlockRequest, IoOp, Ssd, SsdGeometry
from repro.devices.ssd_profile import SsdLatencyModel
from repro.errors import is_ebusy
from repro.kernel import NoopScheduler, OS
from repro.mittos import MittSsd


def _stack(sim, mode="precise", **geo_kw):
    geo = SsdGeometry(jitter_frac=0.0, **geo_kw)
    ssd = Ssd(sim, geo)
    sched = NoopScheduler(sim, ssd)
    predictor = MittSsd(ssd, SsdLatencyModel.from_spec(geo), mode=mode)
    os_ = OS(sim, ssd, sched, predictor=predictor)
    return os_, predictor, ssd


def _read(lpn, pages=1, page=16 * KB):
    return BlockRequest(IoOp.READ, lpn * page, pages * page)


def test_mode_validated(sim):
    ssd = Ssd(sim)
    with pytest.raises(ValueError):
        MittSsd(ssd, SsdLatencyModel.from_spec(ssd.geometry), mode="x")


def test_idle_read_estimate_is_100us(sim):
    _, predictor, _ = _stack(sim)
    wait, service = predictor._estimate(_read(0))
    assert wait == 0.0
    assert service == 100.0


def test_estimate_sees_busy_chip(sim):
    os_, predictor, ssd = _stack(sim)
    ssd.erase_block(0)  # chip 0 busy for 6 ms
    wait, _ = predictor._estimate(_read(0))
    assert wait == pytest.approx(6 * MS, rel=0.05)
    # Other chips unaffected:
    wait_other, _ = predictor._estimate(_read(1))
    assert wait_other < 100.0


def test_admit_rejects_read_behind_erase(sim):
    os_, predictor, ssd = _stack(sim)
    ssd.erase_block(0)
    verdict = predictor.admit(_read(0), deadline=2 * MS)
    assert not verdict.accept
    verdict_other = predictor.admit(_read(1), deadline=2 * MS)
    assert verdict_other.accept


def test_striped_request_rejected_if_any_subpage_violates(sim):
    os_, predictor, ssd = _stack(sim)
    ssd.erase_block(3)  # one of the stripe targets
    verdict = predictor.admit(_read(0, pages=8), deadline=2 * MS)
    assert not verdict.accept


def test_write_estimate_uses_program_pattern(sim):
    _, predictor, ssd = _stack(sim)
    write = BlockRequest(IoOp.WRITE, 0, 16 * KB)
    _, service = predictor._estimate(write)
    # First allocation lands on page 0 of a fresh block: a 1 ms lower page.
    assert service == pytest.approx(1 * MS)


def test_chip_mirror_resyncs_after_drain(sim):
    os_, predictor, ssd = _stack(sim)

    def gen():
        yield os_.read(0, 0, 16 * KB)
        yield 1 * MS

    proc = sim.process(gen())
    sim.run()
    wait, _ = predictor._estimate(_read(0))
    assert wait == 0.0


def test_channel_contention_predicted(sim):
    os_, predictor, ssd = _stack(sim)
    # Load chips 1-7 (same channel as chip 0) with reads.
    for chip in range(1, 8):
        os_.read(0, chip * 16 * KB, 16 * KB)
    wait, _ = predictor._estimate(_read(0))
    assert wait > 0.0  # channel serialization visible


def test_end_to_end_ebusy_failover_path(sim):
    os_, predictor, ssd = _stack(sim)
    ssd.erase_block(0)

    def gen():
        result = yield os_.read(0, 0, 16 * KB, deadline=1 * MS)
        return result

    proc = sim.process(gen())
    sim.run()
    assert is_ebusy(proc.value)


def test_prediction_tracks_actual_latency(sim):
    os_, predictor, ssd = _stack(sim)
    rng = sim.rng("acc")
    errors = []

    def loop():
        for _ in range(60):
            lpn = rng.randrange(0, 4096)
            req = _read(lpn)
            verdict = predictor.admit(req, deadline=1_000 * MS)
            req.submit_time = sim.now
            done = sim.event()
            req.add_callback(lambda r: done.try_succeed())
            os_.scheduler.submit(req)
            if rng.random() < 0.4:
                os_.write(0, rng.randrange(0, 4096) * 16 * KB, 64 * KB)
            yield done
            errors.append(abs(req.latency - verdict.predicted_total))

    sim.process(loop())
    sim.run()
    assert sum(errors) / len(errors) < 100.0  # within one page read


def test_naive_mode_ignores_channel_and_pattern(sim):
    os_, predictor, ssd = _stack(sim, mode="naive")
    write = BlockRequest(IoOp.WRITE, 0, 16 * KB)
    _, service = predictor._estimate(write)
    assert service == 1500.0  # the averaged program time


def test_min_io_latency(sim):
    _, predictor, _ = _stack(sim)
    assert predictor.min_io_latency(16 * KB) == 100.0
