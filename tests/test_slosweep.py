"""Acceptance tests for the slosweep experiment (adaptive vs static)."""

import pytest

from repro._units import MS
from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.registry import SCENARIOS
from repro.experiments.slosweep import (CELLS, FLOOR_DIV, LINES, cell_spec,
                                        run)
from repro.faults import FaultSpec, MessageLoss


@pytest.fixture(scope="module")
def sweep():
    """One shared quick run: every acceptance check reads the same data."""
    return run(quick=True, seed=7)


def test_slosweep_is_registered():
    assert "slosweep" in EXPERIMENTS
    assert "slosweep" in SCENARIOS
    assert get_experiment("slosweep") is run


def test_every_cell_runs_every_line(sweep):
    cells = sweep.data["cells"]
    assert set(cells) == set(CELLS)
    for cell_data in cells.values():
        assert set(cell_data["p95"]) == set(LINES)
        assert set(cell_data["rejected"]) == set(LINES)


def test_adaptive_meets_or_beats_static_mittos_somewhere(sweep):
    # The headline acceptance: on at least one grid cell the feedback
    # controller's foreground p95 is no worse than the static baseline's.
    cells = sweep.data["cells"]
    assert any(d["p95"]["adaptive"] <= d["p95"]["mittos"]
               for d in cells.values())


def test_adaptive_sheds_strictly_less_than_tight_rejects(sweep):
    # Graceful degradation, not blanket rejection: what the guards shed
    # is a sliver of what the pre-tightened static deadline bounces.
    for d in sweep.data["cells"].values():
        assert d["shed"] < d["rejected"]["tight"]


def test_backpressure_actually_engages(sweep):
    # At least one cell must exercise the queue-depth shedding path —
    # a sweep where the guards never fire isn't testing backpressure.
    assert any(d["shed"] > 0 for d in sweep.data["cells"].values())


def test_controller_adapts_within_the_operator_bands(sweep):
    baseline = sweep.data["baseline_us"]
    for d in sweep.data["cells"].values():
        assert d["transitions"] >= 1
        assert baseline / FLOOR_DIV <= d["final_deadline_us"] \
            <= baseline * 4.0


def test_cell_specs_validate():
    for cell in CELLS:
        spec = cell_spec(cell, 8_000 * MS)
        assert spec.validate() is spec
    with pytest.raises(ValueError):
        cell_spec("nope", 8_000 * MS)


def test_custom_faults_replace_the_grid():
    spec = FaultSpec(message_loss=(MessageLoss(rate=0.05),),
                     rpc_timeout_us=80 * MS, op_budget_us=500 * MS,
                     max_attempts=4)
    result = run(quick=True, seed=7, faults=spec)
    assert set(result.data["cells"]) == {"custom"}
    assert set(result.data["cells"]["custom"]["p95"]) == set(LINES)
