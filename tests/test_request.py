"""Tests of BlockRequest."""

import pytest

from repro.devices.request import BlockRequest, IoClass, IoOp


def test_request_ids_are_unique():
    a = BlockRequest(IoOp.READ, 0, 4096)
    b = BlockRequest(IoOp.READ, 0, 4096)
    assert a.req_id != b.req_id


def test_validation():
    with pytest.raises(ValueError):
        BlockRequest(IoOp.READ, 0, 0)
    with pytest.raises(ValueError):
        BlockRequest(IoOp.READ, -1, 4096)
    with pytest.raises(ValueError):
        BlockRequest(IoOp.READ, 0, 4096, priority=8)


def test_end_offset():
    req = BlockRequest(IoOp.WRITE, 100, 50)
    assert req.end_offset == 150


def test_finish_fires_callbacks_once():
    req = BlockRequest(IoOp.READ, 0, 4096)
    seen = []
    req.add_callback(lambda r: seen.append(r.complete_time))
    req.finish(123.0)
    assert seen == [123.0]
    req.finish(456.0)  # callbacks already drained
    assert seen == [123.0]


def test_latency_requires_both_timestamps():
    req = BlockRequest(IoOp.READ, 0, 4096)
    assert req.latency is None
    req.submit_time = 10.0
    assert req.latency is None
    req.finish(35.0)
    assert req.latency == 25.0


def test_ioclass_ordering_matches_cfq_priority():
    assert IoClass.RT < IoClass.BE < IoClass.IDLE


def test_repr_mentions_op_and_offset():
    req = BlockRequest(IoOp.WRITE, 4096, 512, pid=3)
    assert "write" in repr(req)
    assert "4096" in repr(req)
