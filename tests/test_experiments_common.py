"""Tests of the shared experiment harness (builders, runners, results)."""

import pytest

from repro._units import MS, SEC
from repro.experiments.common import (ExperimentResult,
                                      build_cache_cluster,
                                      build_disk_cluster, build_lsm_node,
                                      build_ssd_cluster,
                                      disk_latency_model, make_strategy,
                                      percentile_rows, run_clients,
                                      run_ec2_disk_line)
from repro.metrics.latency import LatencyRecorder


def test_disk_latency_model_is_cached():
    assert disk_latency_model() is disk_latency_model()


def test_build_disk_cluster_shape(sim):
    env = build_disk_cluster(sim, 5)
    assert len(env.nodes) == 5
    assert len(env.injectors) == 5
    assert all(n.os.predictor is not None for n in env.nodes)


def test_build_disk_cluster_without_mitt(sim):
    env = build_disk_cluster(sim, 3, mitt=False)
    assert all(n.os.predictor is None for n in env.nodes)


def test_unknown_scheduler_rejected(sim):
    with pytest.raises(ValueError):
        build_disk_cluster(sim, 3, scheduler="deadline")


def test_cache_cluster_is_preloaded(sim):
    env = build_cache_cluster(sim, 3, n_keys=500)
    node = env.nodes[0]
    offset, size = env.keyspace.locate(100)
    assert node.os.cache.resident(0, offset, size)


def test_cache_cluster_stacks_mittcache(sim):
    from repro.mittos import MittCache
    env = build_cache_cluster(sim, 3, n_keys=500)
    assert isinstance(env.nodes[0].os.predictor, MittCache)
    assert env.nodes[0].os.predictor.io_predictor is not None


def test_ssd_cluster_shares_cpu(sim):
    env = build_ssd_cluster(sim, 4, shared_cpu_slots=8)
    cpus = {id(n.cpu) for n in env.nodes}
    assert len(cpus) == 1  # one physical machine


def test_lsm_node_is_loaded(sim):
    node = build_lsm_node(sim, 0, range(200))
    assert node.engine._l1


def test_make_strategy_rejects_unknown(sim):
    env = build_disk_cluster(sim, 3)
    with pytest.raises(ValueError):
        make_strategy("yolo", env.cluster)


def test_run_clients_unknown_keydist(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("base", env.cluster)
    with pytest.raises(ValueError):
        run_clients(env, strategy, 1, 1, key_dist="pareto")


def test_run_clients_zipfian(sim):
    env = build_disk_cluster(sim, 3)
    strategy = make_strategy("base", env.cluster)
    rec = run_clients(env, strategy, 2, 10, key_dist="zipfian",
                      limit_us=60 * SEC)
    assert len(rec) == 20


def test_run_ec2_disk_line_is_seed_deterministic():
    a, _, _ = run_ec2_disk_line("base", seed=3, n_nodes=5, n_clients=3,
                                n_ops=30, horizon_us=20 * SEC)
    b, _, _ = run_ec2_disk_line("base", seed=3, n_nodes=5, n_clients=3,
                                n_ops=30, horizon_us=20 * SEC)
    assert a.samples == b.samples


def test_percentile_rows_layout():
    rec = LatencyRecorder("x")
    for i in range(1, 101):
        rec.add(i * MS)
    headers, rows = percentile_rows([rec], percentiles=(50, 95))
    assert headers == ["line", "n", "avg_ms", "p50", "p95"]
    assert rows[0][0] == "x"
    assert rows[0][1] == 100


def test_experiment_result_render_and_plots():
    result = ExperimentResult("figX", "demo")
    result.add_table("heading", ["a"], [[1]])
    result.add_note("a note")
    rec = LatencyRecorder("line")
    for i in range(10):
        rec.add((i + 1) * MS)
    result.add_plot("plot", [rec])
    out = result.render()
    assert "figX" in out and "heading" in out and "note: a note" in out
    plot = result.render_plots()
    assert "plot" in plot and "*=line" in plot
