"""Tests of key popularity distributions."""

import random
from collections import Counter

import pytest

from repro.workloads import UniformKeys, ZipfianKeys


def test_uniform_covers_space():
    dist = UniformKeys(100, random.Random(1))
    seen = {dist.next_key() for _ in range(5000)}
    assert len(seen) == 100


def test_zipfian_theta_validated():
    with pytest.raises(ValueError):
        ZipfianKeys(100, random.Random(1), theta=1.0)


def test_zipfian_ranks_are_skewed():
    dist = ZipfianKeys(1000, random.Random(1))
    ranks = Counter(dist.next_rank() for _ in range(20000))
    assert ranks[0] > ranks.get(100, 0) > ranks.get(900, 0)
    top10 = sum(ranks[r] for r in range(10))
    assert top10 > 0.3 * 20000  # heavy head


def test_zipfian_keys_in_range():
    dist = ZipfianKeys(50, random.Random(2))
    assert all(0 <= dist.next_key() < 50 for _ in range(2000))


def test_scramble_spreads_popular_keys():
    dist = ZipfianKeys(1000, random.Random(3))
    hot = Counter(dist.next_key() for _ in range(20000)).most_common(5)
    hot_keys = [k for k, _ in hot]
    # Scrambled: the hottest keys are not the lowest-numbered ones.
    assert any(k > 100 for k in hot_keys)


def test_zipfian_deterministic_given_rng():
    a = ZipfianKeys(100, random.Random(9))
    b = ZipfianKeys(100, random.Random(9))
    assert [a.next_key() for _ in range(50)] == \
        [b.next_key() for _ in range(50)]
