"""Tests of the synthetic trace generator/replayer."""

import random

import pytest

from repro._units import GB, SEC
from repro.devices import Disk, DiskParams, IoOp
from repro.kernel import CfqScheduler, OS
from repro.sim import Simulator
from repro.workloads.traces import (TRACE_FAMILIES, generate_trace,
                                    replay_trace)


def test_five_families_defined():
    assert set(TRACE_FAMILIES) == {"DAPPS", "DTRS", "EXCH", "LMBE", "TPCC"}


@pytest.mark.parametrize("name", sorted(TRACE_FAMILIES))
def test_trace_respects_family_parameters(name):
    spec = TRACE_FAMILIES[name]
    records = generate_trace(spec, random.Random(1), 60 * SEC,
                             span_bytes=100 * GB)
    assert records, "empty trace"
    # Rate within a factor of ~2 of spec (burstiness allowed).
    rate = len(records) / 60
    assert spec.iops / 2 < rate < spec.iops * 2.5
    reads = sum(1 for r in records if r.op is IoOp.READ)
    assert reads / len(records) == pytest.approx(spec.read_fraction,
                                                 abs=0.08)
    assert all(r.size in spec.sizes for r in records)
    assert all(r.offset % 4096 == 0 for r in records)


def test_times_are_sorted():
    records = generate_trace(TRACE_FAMILIES["EXCH"], random.Random(2),
                             10 * SEC)
    times = [r.time for r in records]
    assert times == sorted(times)


def test_rate_scale_multiplies_intensity():
    base = generate_trace(TRACE_FAMILIES["TPCC"], random.Random(3),
                          10 * SEC)
    scaled = generate_trace(TRACE_FAMILIES["TPCC"], random.Random(3),
                            10 * SEC, rate_scale=4.0)
    assert len(scaled) > 2.5 * len(base)


def test_replay_submits_all_records():
    sim = Simulator(seed=1)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    os_ = OS(sim, disk, CfqScheduler(sim, disk))
    records = generate_trace(TRACE_FAMILIES["DAPPS"], random.Random(4),
                             5 * SEC)
    completed = []
    proc = replay_trace(sim, os_, records,
                        on_complete=lambda r: completed.append(r))
    sim.run()
    assert proc.value == len(records)
    assert len(completed) == len(records)


def test_replay_with_deadline_tags_requests():
    sim = Simulator(seed=1)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    os_ = OS(sim, disk, CfqScheduler(sim, disk))
    records = generate_trace(TRACE_FAMILIES["TPCC"], random.Random(5),
                             1 * SEC)
    tagged = []
    replay_trace(sim, os_, records, deadline_us=10_000.0,
                 on_complete=tagged.append)
    sim.run()
    assert all(r.abs_deadline is not None for r in tagged)
