"""Tests of error injection (§7.7)."""

import random

import pytest

from repro.mittos import FaultInjector


def test_rates_validated():
    with pytest.raises(ValueError):
        FaultInjector(random.Random(1), false_negative_rate=1.5)


def test_no_rates_is_identity():
    inj = FaultInjector(random.Random(1))
    assert inj.apply(True) is True
    assert inj.apply(False) is False


def test_full_false_negative_lets_everything_through():
    inj = FaultInjector(random.Random(1), false_negative_rate=1.0)
    assert all(inj.apply(False) for _ in range(100))
    assert inj.injected_fn == 100


def test_full_false_positive_rejects_everything():
    inj = FaultInjector(random.Random(1), false_positive_rate=1.0)
    assert not any(inj.apply(True) for _ in range(100))
    assert inj.injected_fp == 100


def test_partial_rates_are_approximate():
    inj = FaultInjector(random.Random(1), false_positive_rate=0.2)
    flips = sum(0 if inj.apply(True) else 1 for _ in range(5000))
    assert 800 < flips < 1200


def test_fn_rate_does_not_touch_accepts():
    inj = FaultInjector(random.Random(1), false_negative_rate=1.0)
    assert all(inj.apply(True) for _ in range(100))
    assert inj.injected_fn == 0
