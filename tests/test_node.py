"""Tests of StorageNode request handling."""

from repro._units import GB, KB, MS
from repro.errors import is_ebusy
from repro.experiments.common import build_disk_cluster
from repro.sim.resources import Semaphore


def test_get_returns_record(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    ev = node.get(5)
    sim.run()
    assert ev.value.key == 5
    assert node.handled == 1


def test_get_with_deadline_can_return_ebusy(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    for i in range(6):
        node.os.read(0, i * GB, 2048 * KB, pid=9)
    ev = node.get(5, deadline=5 * MS)
    sim.run()
    assert is_ebusy(ev.value)
    assert node.ebusy_sent == 1


def test_cpu_slots_serialize_handlers(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    node.cpu = Semaphore(sim, 1)
    node.handler_cpu_us = 500.0
    events = [node.get(k) for k in range(3)]
    sim.run()
    finish = sorted(ev._value and 1 for ev in events)
    assert all(ev.triggered for ev in events)
    # With 1 CPU and 500us handler time, service start is serialized:
    # total runtime must exceed 3 * 500us.
    assert sim.now >= 1500.0


def test_put_path(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    ev = node.put(5)
    sim.run()
    assert ev.value is True


def test_get_cancellable_began_fires_on_dispatch(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    ev, cancel, began = node.get_cancellable(5)
    sim.run_until(began)
    assert began.triggered
    sim.run()
    assert not is_ebusy(ev.value)


def test_get_cancellable_cancel_before_dispatch(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    # Fill device + scheduler so the engine IO queues.
    for i in range(8):
        node.os.read(0, i * GB, 2048 * KB, pid=9)
    ev, cancel, began = node.get_cancellable(5)

    def canceller():
        yield 200.0  # after the handler issued its (queued) IO
        cancel()

    sim.process(canceller())
    sim.run()
    assert is_ebusy(ev.value)  # revoked in the scheduler queue


def test_handler_cpu_time_charged(sim):
    env = build_disk_cluster(sim, 3)
    node = env.nodes[0]
    node.handler_cpu_us = 1000.0
    start = sim.now
    ev = node.get(5)
    sim.run()
    assert ev.value.engine_latency is not None
    assert sim.now - start >= 1000.0
