"""Tests of the §8.3 consistency discussion: fast failover vs staleness."""

from repro._units import MS, SEC
from repro.cluster.consistency import (Session, StalenessGuard,
                                       VersionedData,
                                       mittos_get_with_guard)
from repro.experiments.common import build_disk_cluster


def _world(sim, lag_us=50 * MS):
    env = build_disk_cluster(sim, 3, replication=3)
    data = VersionedData(sim, env.cluster, replication_lag_us=lag_us)
    return env, data


def test_write_applies_at_primary_immediately(sim):
    env, data = _world(sim)
    replicas = env.cluster.replicas_for(1)
    data.write(1)
    assert data.version(replicas[0], 1) == 1
    assert data.version(replicas[1], 1) == 0  # lag not elapsed


def test_replicas_catch_up_after_lag(sim):
    env, data = _world(sim, lag_us=10 * MS)
    replicas = env.cluster.replicas_for(1)
    data.write(1)
    sim.run(until=20 * MS)
    assert all(data.version(n, 1) == 1 for n in replicas)


def test_out_of_order_replication_keeps_max_version(sim):
    env, data = _world(sim, lag_us=10 * MS)
    replicas = env.cluster.replicas_for(1)
    data.write(1)
    data.write(1)
    sim.run()
    assert all(data.version(n, 1) == 2 for n in replicas)


def test_session_counts_regressions():
    session = Session()
    session.observe(1, 3)
    session.observe(1, 2)   # regression
    session.observe(1, 4)
    assert session.violations == 1
    assert session.last_seen(1) == 4


def test_guard_filters_stale_replicas(sim):
    env, data = _world(sim)
    replicas = env.cluster.replicas_for(1)
    session = Session()
    guard = StalenessGuard(data, session)
    data.write(1)
    session.observe(1, 1)   # read the new version from the primary
    targets = guard.filter_failover_targets(1, replicas)
    assert targets == [replicas[0]]  # replicas are stale, skipped
    assert guard.skipped_stale == 2
    sim.run()  # replication lag elapses
    targets = guard.filter_failover_targets(1, replicas)
    assert len(targets) == 3


def test_unguarded_failover_can_violate_monotonic_reads(sim):
    """The §8.3 scenario: EBUSY failover lands on a stale replica."""
    env, data = _world(sim, lag_us=2 * SEC)
    key = 1
    replicas = env.cluster.replicas_for(key)
    session = Session()
    # The session reads version 1 from the primary...
    data.write(key)
    ev = mittos_get_with_guard(sim, env.cluster, data, session, key,
                               deadline_us=15 * MS)
    sim.run_until(ev, limit=10 * SEC)
    assert ev.value == 1
    # ...then the primary gets busy, and failover reads a stale replica.
    env.injectors[replicas[0].node_id].busy_window(3 * SEC, concurrency=5)
    sim.run(until=sim.now + 100 * MS)
    ev = mittos_get_with_guard(sim, env.cluster, data, session, key,
                               deadline_us=15 * MS)
    sim.run_until(ev, limit=20 * SEC)
    assert ev.value == 0  # older version!
    assert session.violations == 1


def test_guard_prevents_the_violation(sim):
    env, data = _world(sim, lag_us=2 * SEC)
    key = 1
    replicas = env.cluster.replicas_for(key)
    session = Session()
    guard = StalenessGuard(data, session)
    data.write(key)
    ev = mittos_get_with_guard(sim, env.cluster, data, session, key,
                               deadline_us=15 * MS, guard=guard)
    sim.run_until(ev, limit=10 * SEC)
    env.injectors[replicas[0].node_id].busy_window(3 * SEC, concurrency=5)
    sim.run(until=sim.now + 100 * MS)
    start = sim.now
    ev = mittos_get_with_guard(sim, env.cluster, data, session, key,
                               deadline_us=15 * MS, guard=guard)
    sim.run_until(ev, limit=20 * SEC)
    assert ev.value == 1          # never regressed...
    assert session.violations == 0
    assert sim.now - start > 15 * MS  # ...at the price of waiting


def test_guard_costs_nothing_when_replicas_are_fresh(sim):
    env, data = _world(sim, lag_us=1 * MS)
    key = 1
    session = Session()
    guard = StalenessGuard(data, session)
    data.write(key)
    sim.run(until=10 * MS)
    targets = guard.filter_failover_targets(
        key, env.cluster.replicas_for(key))
    assert len(targets) == 3
    assert guard.skipped_stale == 0
