"""Simulator edge cases: cancellation, defuse, tiebreaks, past scheduling."""

import pytest

from repro.errors import ProcessCrashed, SchedulingInPastError
from repro.sim import Simulator
from repro.sim.core import Handle


# -- cancelled-handle skipping ---------------------------------------------

def test_run_until_skips_cancelled_handles(sim):
    log = []
    doomed = sim.schedule(5, log.append, "doomed")
    doomed.cancel()
    ev = sim.timeout(10, value="done")
    assert sim.run_until(ev) is True
    assert log == [] and sim.now == 10


def test_run_until_with_cancelled_handle_at_heap_top_and_limit(sim):
    stale = sim.schedule(50, lambda: None)
    ev = sim.timeout(200)
    stale.cancel()
    # Top of heap (cancelled, t=50) is under the limit; the event is not.
    assert sim.run_until(ev, limit=100) is False
    assert not ev.triggered


def test_cancel_is_idempotent_and_run_survives_all_cancelled(sim):
    handles = [sim.schedule(i, lambda: None) for i in range(3)]
    for handle in handles:
        handle.cancel()
        handle.cancel()
    sim.run()
    assert sim.now == 0.0  # nothing executed, clock never advanced


def test_cancel_drops_callback_references(sim):
    log = []
    handle = sim.schedule(1, log.append, "x")
    handle.cancel()
    assert handle.fn is None and handle.args == ()


# -- defuse crash-dropping --------------------------------------------------

def test_defuse_drops_a_reported_crash(sim):
    ev = sim.event()
    sim.schedule(1, ev.fail, ValueError("boom"))
    sim.schedule(1, lambda: sim.defuse(ev))
    with pytest.raises(ProcessCrashed):
        sim.run()  # defuse ran in a later event; crash already raised


def test_defuse_before_crash_check_suppresses_raise(sim):
    ev = sim.event()

    def fail_and_defuse():
        ev.fail(ValueError("boom"))
        sim.defuse(ev)

    sim.schedule(1, fail_and_defuse)
    sim.run()  # no ProcessCrashed: defused within the same event
    assert ev.triggered and not ev.ok


def test_defuse_only_drops_the_named_event(sim):
    first, second = sim.event(), sim.event()

    def fail_both():
        first.fail(ValueError("a"))
        second.fail(ValueError("b"))
        sim.defuse(first)

    sim.schedule(1, fail_both)
    with pytest.raises(ProcessCrashed, match="b"):
        sim.run()


# -- equal-time tiebreak ordering ------------------------------------------

def test_handle_lt_orders_by_time_then_seq():
    a = Handle(1.0, 5, 5, None, ())
    b = Handle(1.0, 6, 6, None, ())
    c = Handle(0.5, 9, 9, None, ())
    assert a < b          # same time: scheduling order wins
    assert c < a and c < b  # earlier time wins regardless of seq
    assert not (b < a)


def test_equal_time_events_interleave_in_scheduling_order(sim):
    log = []
    sim.schedule(10, log.append, "first")
    sim.schedule(5, log.append, "early")
    sim.schedule(10, log.append, "second")
    sim.schedule(10, log.append, "third")
    sim.run()
    assert log == ["early", "first", "second", "third"]


def test_zero_delay_events_scheduled_during_run_preserve_order(sim):
    log = []

    def spawn():
        sim.schedule(0, log.append, "child-a")
        sim.schedule(0, log.append, "child-b")

    sim.schedule(1, spawn)
    sim.schedule(1, log.append, "sibling")
    sim.run()
    # Children run after the already-queued sibling at the same time.
    assert log == ["sibling", "child-a", "child-b"]


# -- SchedulingInPastError ---------------------------------------------------

def test_schedule_at_now_is_allowed(sim):
    sim.schedule(7, lambda: None)
    sim.run()
    handle = sim.schedule_at(sim.now, lambda: None)
    assert handle.time == sim.now


def test_schedule_at_past_raises_with_context(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SchedulingInPastError, match="5.*now 10"):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_raises(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SchedulingInPastError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_past_from_callback_raises():
    sim = Simulator()

    def rogue():
        sim.schedule_at(sim.now - 1, lambda: None)

    sim.schedule(5, rogue)
    with pytest.raises(SchedulingInPastError):
        sim.run()
