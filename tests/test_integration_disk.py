"""Integration: the full disk path cuts tails end-to-end (§7.1 shape)."""

from repro._units import KB, MS, SEC
from repro.experiments.common import build_disk_cluster, make_strategy, \
    run_clients
from repro.sim import Simulator


def _run(strategy_name, noisy, deadline=None, seed=11):
    sim = Simulator(seed=seed)
    env = build_disk_cluster(sim, 3)
    env.cluster.primary_fn = lambda key: 0  # always hit the noisy node
    if noisy:
        env.injectors[0].disk_read_threads(n_threads=4, size=256 * KB,
                                           priority=2,
                                           until_us=120 * SEC)
    strategy = make_strategy(strategy_name, env.cluster,
                             deadline_us=deadline)
    return run_clients(env, strategy, n_clients=3, n_ops=120,
                       think_time_us=3 * MS, limit_us=120 * SEC)


def test_noise_inflates_base_tail():
    quiet = _run("base", noisy=False)
    noisy = _run("base", noisy=True)
    assert noisy.p(90) > 1.5 * quiet.p(90)


def test_mittos_restores_nonoise_shape():
    quiet = _run("base", noisy=False)
    mitt = _run("mittos", noisy=True, deadline=20 * MS)
    noisy = _run("base", noisy=True)
    # MittOS under noise is close to NoNoise, far from noisy Base.
    assert mitt.p(95) < quiet.p(95) * 1.5
    assert mitt.p(95) < noisy.p(95) * 0.7


def test_mittos_beats_hedged_at_tail():
    deadline = _run("base", noisy=True).p(95) * MS
    hedged = _run("hedged", noisy=True, deadline=deadline)
    mitt = _run("mittos", noisy=True, deadline=deadline)
    assert mitt.p(95) <= hedged.p(95)


def test_no_request_is_lost():
    rec = _run("mittos", noisy=True, deadline=20 * MS)
    assert len(rec) == 3 * 120
    assert rec.counters.get("eio", 0) == 0
    assert rec.counters.get("ebusy_leak", 0) == 0
