"""Integration: tail amplification by scale and strategy interplay (§7.3)."""

from repro._units import MS, SEC
from repro.experiments.common import run_ec2_disk_line


def _line(name, sf, deadline=None, seed=21):
    rec, strat, _ = run_ec2_disk_line(
        name, deadline_us=deadline, seed=seed, n_nodes=10, n_clients=8,
        n_ops=150, scale_factor=sf, horizon_us=60 * SEC)
    return rec, strat


def test_scale_factor_amplifies_the_fraction_of_slow_requests():
    base1, _ = _line("base", 1)
    base5, _ = _line("base", 5)
    threshold = base1.p(95)
    # 1-(1-P)^5 amplification: the slow fraction grows superlinearly.
    assert base5.fraction_above(threshold) > \
        2.5 * base1.fraction_above(threshold)


def test_mittos_beats_hedged_at_every_scale():
    """MittOS wins at SF=1 and SF=5 (the *growth* of the gap needs the
    larger fig6 sample sizes; benchmarks/test_bench_fig6.py asserts it)."""
    deadline = _line("base", 1)[0].p(95) * MS
    for sf in (1, 5):
        hedged, _ = _line("hedged", sf, deadline)
        mitt, _ = _line("mittos", sf, deadline)
        assert mitt.mean_ms < hedged.mean_ms, f"SF={sf}"
        assert mitt.p(95) < hedged.p(95), f"SF={sf}"


def test_failovers_scale_with_parallel_subrequests():
    deadline = _line("base", 1)[0].p(95) * MS
    _, s1 = _line("mittos", 1, deadline)
    _, s5 = _line("mittos", 5, deadline)
    # 5x the get()s per user request -> roughly 5x the EBUSY encounters.
    assert s5.failovers > 2 * s1.failovers
