"""Fixture-driven tests for the determinism linter (DET001-DET005)."""

import json
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_file, lint_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.linter import lint_source, render_findings

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: fixture file -> rule IDs that MUST fire there.
POSITIVE = {
    "det001_bad.py": "DET001",
    "det002_bad.py": "DET002",
    "kernel/det003_bad.py": "DET003",
    "det004_bad.py": "DET004",
    "kernel/det005_bad.py": "DET005",
}

#: fixture file -> rule ID that must NOT fire there.
NEGATIVE = {
    "det001_ok.py": "DET001",
    "metrics/det002_ok.py": "DET002",
    "kernel/det003_ok.py": "DET003",
    "det003_nonscheduling_ok.py": "DET003",
    "det004_ok.py": "DET004",
    "sim/core.py": "DET005",
}


def rules_in(path):
    return {f.rule for f in lint_file(FIXTURES / path)}


@pytest.mark.parametrize("fixture,rule", sorted(POSITIVE.items()))
def test_positive_fixture_fires(fixture, rule):
    assert rule in rules_in(fixture)


@pytest.mark.parametrize("fixture,rule", sorted(NEGATIVE.items()))
def test_negative_fixture_is_silent(fixture, rule):
    assert rule not in rules_in(fixture)


def test_positive_fixtures_only_fire_their_own_rule():
    for fixture, rule in POSITIVE.items():
        assert rules_in(fixture) == {rule}, fixture


def test_every_rule_has_positive_and_negative_coverage():
    checkable = set(RULES) - {"DET000"}
    assert set(POSITIVE.values()) == checkable
    assert set(NEGATIVE.values()) == checkable


def test_suppression_comments_silence_findings():
    assert lint_file(FIXTURES / "suppressed_ok.py") == []


def test_suppression_is_rule_specific():
    src = "import time\nx = time.time()  # repro: allow[DET001] wrong id\n"
    findings = lint_source(src, "foo.py")
    assert [f.rule for f in findings] == ["DET002"]


def test_parse_error_reported_as_det000():
    findings = lint_source("def broken(:\n", "bad.py")
    assert [f.rule for f in findings] == ["DET000"]


def test_lint_paths_walks_directories():
    findings = lint_paths([FIXTURES])
    assert {f.rule for f in findings} == set(RULES) - {"DET000"}
    # Positive fixtures only: every *_ok.py file stays clean.
    assert all("_ok.py" not in f.path for f in findings)


def test_findings_carry_location_and_render():
    finding = lint_file(FIXTURES / "det001_bad.py")[0]
    assert finding.line > 0
    rendered = finding.render()
    assert "det001_bad.py" in rendered and "DET001" in rendered


def test_json_output_round_trips():
    findings = lint_file(FIXTURES / "det004_bad.py")
    doc = json.loads(render_findings(findings, fmt="json"))
    assert doc["count"] == len(findings) > 0
    assert doc["findings"][0]["rule"] == "DET004"
    assert doc["findings"][0]["rule_name"] == "float-time-equality"


def test_cli_exit_codes(capsys):
    assert analysis_main(["lint", str(FIXTURES / "det001_ok.py")]) == 0
    assert analysis_main(["lint", str(FIXTURES / "det001_bad.py")]) == 1
    assert analysis_main(["rules"]) == 0
    out = capsys.readouterr().out
    assert "DET005" in out


def test_cli_rule_filter(capsys):
    code = analysis_main(["lint", str(FIXTURES / "det001_bad.py"),
                          "--rules", "DET002"])
    assert code == 0  # DET001 findings filtered out
    capsys.readouterr()


def test_repo_tree_is_clean():
    src = Path(__file__).parent.parent / "src" / "repro"
    findings = lint_paths([src])
    assert findings == [], "\n".join(f.render() for f in findings)
