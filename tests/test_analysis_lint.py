"""Fixture-driven tests for the determinism linter (DET001-DET021)."""

import json
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_file, lint_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.linter import lint_source, render_findings

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: fixture file -> rule IDs that MUST fire there.
POSITIVE = {
    "det001_bad.py": "DET001",
    "det002_bad.py": "DET002",
    "kernel/det003_bad.py": "DET003",
    "det004_bad.py": "DET004",
    "kernel/det005_bad.py": "DET005",
    "cluster/det006_bad.py": "DET006",
    "det007_bad.py": "DET007",
    "det008_bad.py": "DET008",
    "det009_bad.py": "DET009",
    "devices/det010_bad.py": "DET010",
    "det011_bad.py": "DET011",
    "det012_bad.py": "DET012",
    "det013_bad.py": "DET013",
    "cluster/det014_bad.py": "DET014",
    "det015_bad.py": "DET015",
    "sim/det016_bad.py": "DET016",
    "cluster/det017_bad.py": "DET017",
    "kernel/det018_bad.py": "DET018",
    "kernel/det019_bad.py": "DET019",
    "cluster/det020_bad.py": "DET020",
    "kernel/det021_bad.py": "DET021",
    "repro/obs/schema.py": "DETW01",
}

#: fixture file -> rule ID that must NOT fire there.
NEGATIVE = {
    "det001_ok.py": "DET001",
    "metrics/det002_ok.py": "DET002",
    "kernel/det003_ok.py": "DET003",
    "det003_nonscheduling_ok.py": "DET003",
    "det004_ok.py": "DET004",
    "sim/core.py": "DET005",
    "cluster/det006_suppressed_ok.py": "DET006",
    "det007_suppressed_ok.py": "DET007",
    "det008_suppressed_ok.py": "DET008",
    "det009_suppressed_ok.py": "DET009",
    "devices/det010_suppressed_ok.py": "DET010",
    "det011_suppressed_ok.py": "DET011",
    "det012_suppressed_ok.py": "DET012",
    "det013_suppressed_ok.py": "DET013",
    "cluster/det014_suppressed_ok.py": "DET014",
    "det015_sorted_ok.py": "DET015",
    "sim/det016_suppressed_ok.py": "DET016",
    "cluster/det017_suppressed_ok.py": "DET017",
    "kernel/det018_frozen_ok.py": "DET018",
    "kernel/det019_ok.py": "DET019",
    "cluster/det020_suppressed_ok.py": "DET020",
    "kernel/det021_ok.py": "DET021",
    "detw01_ok.py": "DETW01",
}


def rules_in(path):
    return {f.rule for f in lint_file(FIXTURES / path)}


@pytest.mark.parametrize("fixture,rule", sorted(POSITIVE.items()))
def test_positive_fixture_fires(fixture, rule):
    assert rule in rules_in(fixture)


@pytest.mark.parametrize("fixture,rule", sorted(NEGATIVE.items()))
def test_negative_fixture_is_silent(fixture, rule):
    assert rule not in rules_in(fixture)


def test_positive_fixtures_only_fire_their_own_rule():
    for fixture, rule in POSITIVE.items():
        assert rules_in(fixture) == {rule}, fixture


def test_every_rule_has_positive_and_negative_coverage():
    checkable = set(RULES) - {"DET000"}
    assert set(POSITIVE.values()) == checkable
    assert set(NEGATIVE.values()) == checkable


def test_suppression_comments_silence_findings():
    assert lint_file(FIXTURES / "suppressed_ok.py") == []


def test_suppression_is_rule_specific():
    src = "import time\nx = time.time()  # repro: allow[DET001] wrong id\n"
    findings = lint_source(src, "foo.py")
    assert [f.rule for f in findings] == ["DET002"]


def test_file_level_suppression_in_first_five_lines():
    src = ("# repro: allow-file[DET001, DET002] fixture: whole-file allow\n"
           "import random\n"
           "import time\n"
           "x = random.random()\n"
           "y = time.time()\n"
           "z = random.random()\n")
    assert lint_source(src, "foo.py") == []


def test_file_level_suppression_is_rule_specific():
    src = ("# repro: allow-file[DET001] fixture\n"
           "import random\n"
           "import time\n"
           "x = random.random()\n"
           "y = time.time()\n")
    assert [f.rule for f in lint_source(src, "foo.py")] == ["DET002"]


def test_file_level_suppression_ignored_after_line_five():
    src = ("import random\n" + "\n" * 5
           + "# repro: allow-file[DET001] too late to count\n"
           + "x = random.random()\n")
    assert [f.rule for f in lint_source(src, "foo.py")] == ["DET001"]


def test_det007_flags_wall_clock_schedule_time():
    src = ("import time\n"
           "def arm(sim):\n"
           "    sim.schedule_at(time.time(), arm)\n")
    # metrics/ is DET002-exempt, but feeding the wall clock into the
    # event heap is a hazard everywhere.
    assert {f.rule for f in lint_source(src, "metrics/report.py")} \
        == {"DET007"}


def test_parse_error_reported_as_det000():
    findings = lint_source("def broken(:\n", "bad.py")
    assert [f.rule for f in findings] == ["DET000"]


def test_lint_paths_walks_directories():
    findings = lint_paths([FIXTURES])
    assert {f.rule for f in findings} == set(RULES) - {"DET000"}
    # Positive fixtures only: every *_ok.py file stays clean.
    assert all("_ok.py" not in f.path for f in findings)


def test_findings_carry_location_and_render():
    finding = lint_file(FIXTURES / "det001_bad.py")[0]
    assert finding.line > 0
    rendered = finding.render()
    assert "det001_bad.py" in rendered and "DET001" in rendered


def test_json_output_round_trips():
    findings = lint_file(FIXTURES / "det004_bad.py")
    doc = json.loads(render_findings(findings, fmt="json"))
    assert doc["count"] == len(findings) > 0
    assert doc["findings"][0]["rule"] == "DET004"
    assert doc["findings"][0]["rule_name"] == "float-time-equality"


def test_sarif_output_is_valid_sarif_210():
    findings = lint_file(FIXTURES / "det009_bad.py")
    doc = json.loads(render_findings(findings, fmt="sarif"))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rule_ids == set(RULES)
    assert len(run["results"]) == len(findings) > 0
    result = run["results"][0]
    assert result["ruleId"] == "DET009"
    assert result["level"] == "warning"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == findings[0].line
    assert region["startColumn"] == findings[0].col + 1


def test_sarif_output_empty_findings(capsys):
    assert analysis_main(["lint", str(FIXTURES / "det001_ok.py"),
                          "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []


def test_cli_exit_codes(capsys):
    assert analysis_main(["lint", str(FIXTURES / "det001_ok.py")]) == 0
    assert analysis_main(["lint", str(FIXTURES / "det001_bad.py")]) == 1
    assert analysis_main(["rules"]) == 0
    out = capsys.readouterr().out
    assert "DET005" in out


def test_cli_rule_filter(capsys):
    code = analysis_main(["lint", str(FIXTURES / "det001_bad.py"),
                          "--rules", "DET002"])
    assert code == 0  # DET001 findings filtered out
    capsys.readouterr()


def test_repo_tree_is_clean():
    root = Path(__file__).parent.parent
    paths = [root / "src" / "repro", root / "benchmarks", root / "examples"]
    findings = lint_paths([p for p in paths if p.exists()])
    assert findings == [], "\n".join(f.render() for f in findings)
