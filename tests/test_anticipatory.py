"""Tests of the anticipatory scheduler and its MittOS integration."""

from repro._units import GB, KB, MS
from repro.devices import BlockRequest, Disk, DiskParams, IoOp
from repro.devices.disk_profile import profile_disk
from repro.errors import is_ebusy
from repro.kernel import OS
from repro.kernel.anticipatory import AnticipatoryScheduler
from repro.mittos.mittanticipatory import MittAnticipatory

MODEL = profile_disk(lambda sim: Disk(sim, DiskParams(
    jitter_frac=0.0, hiccup_prob=0.0)))


def _stack(sim, mitt=False, anticipation_us=3 * MS):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0,
                                queue_depth=1))
    sched = AnticipatoryScheduler(sim, disk,
                                  anticipation_us=anticipation_us)
    predictor = MittAnticipatory(MODEL) if mitt else None
    os_ = OS(sim, disk, sched, predictor=predictor)
    return os_, sched, disk


def _read(offset, pid):
    return BlockRequest(IoOp.READ, offset, 4 * KB, pid=pid)


def test_anticipation_starts_after_a_lone_read(sim):
    os_, sched, disk = _stack(sim)
    first = _read(10 * GB, pid=1)
    other = _read(500 * GB, pid=2)
    sched.submit(first)
    sched.submit(other)
    done_at = {}
    first.add_callback(lambda r: done_at.__setitem__("first", sim.now))
    sim.run_until(sim.timeout(0))  # let the first dispatch happen
    sim.run()
    assert sched.anticipation_expiries >= 1
    # `other` waited out the anticipation window after `first` finished.
    assert other.complete_time > first.complete_time + 3 * MS


def test_anticipated_read_jumps_the_queue(sim):
    os_, sched, disk = _stack(sim)
    first = _read(10 * GB, pid=1)
    stranger = _read(500 * GB, pid=2)
    sched.submit(first)
    sched.submit(stranger)
    order = []
    stranger.add_callback(lambda r: order.append("stranger"))

    def followup():
        # Arrive during the anticipation window with a nearby read.
        yield sim.timeout(
            disk.model_service_time(0, first) + 1 * MS)
        follow = _read(10 * GB + 4 * KB, pid=1)
        follow.add_callback(lambda r: order.append("follow"))
        sched.submit(follow)

    sim.process(followup())
    sim.run()
    assert order == ["follow", "stranger"]
    assert sched.anticipation_hits == 1


def test_no_anticipation_when_same_pid_has_more_reads(sim):
    os_, sched, disk = _stack(sim)
    a = _read(10 * GB, pid=1)
    b = _read(11 * GB, pid=1)
    sched.submit(a)
    sched.submit(b)
    sim.run()
    assert sched.anticipation_expiries == 0
    assert sched.anticipation_hits == 0


def test_mitt_estimate_includes_anticipation_stall(sim):
    os_, sched, disk = _stack(sim, mitt=True)
    predictor = os_.predictor
    first = _read(10 * GB, pid=1)
    pending = _read(700 * GB, pid=3)  # competing work worth deferring
    sched.submit(first)
    sched.submit(pending)
    sim.run_until(sim.timeout(disk.model_service_time(0, first) + 10))
    assert sched.anticipating
    stranger = _read(500 * GB, pid=2)
    wait, _ = predictor._estimate(stranger)
    assert wait >= sched.anticipation_us
    # The anticipated process itself sees zero wait.
    own = _read(10 * GB + 4 * KB, pid=1)
    own_wait, _ = predictor._estimate(own)
    assert own_wait == 0.0
    sim.run()


def test_mitt_rejects_during_anticipation_with_tight_deadline(sim):
    os_, sched, disk = _stack(sim, mitt=True, anticipation_us=20 * MS)

    def gen():
        ev = os_.read(0, 10 * GB, 4 * KB, pid=1)
        sched.submit(_read(700 * GB, pid=3))  # worth anticipating over
        yield ev
        assert sched.anticipating
        # A stranger with a deadline shorter than the hold window:
        result = yield os_.read(0, 10 * GB + 8 * KB, 4 * KB, pid=2,
                                deadline=5 * MS)
        return result

    proc = sim.process(gen())
    sim.run_until(proc)
    assert is_ebusy(proc.value)


def test_cancel_works_under_anticipation(sim):
    os_, sched, disk = _stack(sim)
    first = _read(10 * GB, pid=1)
    victim = _read(500 * GB, pid=2)
    sched.submit(first)
    sched.submit(victim)
    assert sched.cancel(victim) is True
    sim.run()
    assert victim.cancelled
    assert disk.completed == 1
