"""Tests of the LevelDB-like LSM engine."""

from repro._units import GB, KB, MS
from repro.devices import Disk, DiskParams
from repro.devices.disk_profile import profile_disk
from repro.engines import LsmEngine
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, OS
from repro.mittos import MittCfq
from tests.conftest import run_process

MODEL = profile_disk(lambda sim: Disk(sim, DiskParams(
    jitter_frac=0.0, hiccup_prob=0.0)))


def _engine(sim, mitt=True, **kw):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    sched = CfqScheduler(sim, disk)
    predictor = MittCfq(MODEL) if mitt else None
    os_ = OS(sim, disk, sched, predictor=predictor)
    return LsmEngine(os_, **kw), os_


def test_get_from_memtable_is_memory_speed(sim):
    engine, _ = _engine(sim)
    run_process(sim, engine.put(5))
    record = run_process(sim, engine.get(5))
    assert record.cache_hit
    assert record.engine_latency < 100.0


def test_get_from_sstable_reads_disk(sim):
    engine, _ = _engine(sim)
    engine.load_bulk(range(100))
    record = run_process(sim, engine.get(50))
    assert not record.cache_hit
    assert record.engine_latency > 1 * MS


def test_get_missing_key_returns_none(sim):
    engine, _ = _engine(sim)
    engine.load_bulk(range(100))
    assert run_process(sim, engine.get(5000)) is None


def test_memtable_flush_creates_l0_runs(sim):
    engine, _ = _engine(sim, memtable_limit=10, l0_compaction_trigger=100)

    def gen():
        for k in range(25):
            yield sim.process(engine.put(k))

    run_process(sim, gen())
    assert len(engine._l0) == 2
    # keys from flushed runs still readable:
    record = run_process(sim, engine.get(3))
    assert record is not None


def test_compaction_merges_l0_into_l1(sim):
    engine, _ = _engine(sim, memtable_limit=8, l0_compaction_trigger=3)

    def gen():
        for k in range(40):
            yield sim.process(engine.put(k))
        yield 5_000 * MS  # let background compaction drain

    run_process(sim, gen())
    sim.run()
    assert engine.compactions >= 1
    assert len(engine._l0) < 3
    # All keys still resolvable after the merge:
    for key in (0, 17, 31):
        result = run_process(sim, engine.get(key))
        assert result is not None


def test_ebusy_propagates_out_of_engine(sim):
    """§5: LevelDB returns EBUSY up to Riak."""
    engine, os_ = _engine(sim)
    engine.load_bulk(range(100))
    for i in range(6):
        os_.read(9, i * GB, 2048 * KB, pid=9)
    result = run_process(sim, engine.get(50, deadline=5 * MS))
    assert is_ebusy(result)
    assert engine.ebusy == 1


def test_bloom_filter_skips_most_absent_tables(sim):
    engine, os_ = _engine(sim, bloom_fp_rate=0.0)
    engine.load_bulk(range(100), tables=10)
    reads_before = os_.reads
    run_process(sim, engine.get(5000))
    # With a perfect bloom filter, no table read happens at all.
    assert os_.reads == reads_before


def test_load_bulk_ranges_are_disjoint(sim):
    engine, _ = _engine(sim)
    engine.load_bulk(range(1000), tables=8)
    tables = engine._l1
    assert len(tables) >= 8
    for a, b in zip(tables, tables[1:]):
        assert a.hi < b.lo
