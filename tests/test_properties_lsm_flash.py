"""Property-based tests: LSM durability and flash-cache residency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import KB
from repro.devices import Disk, DiskParams
from repro.engines import LsmEngine
from repro.kernel import CfqScheduler, OS
from repro.sim import Simulator


@given(ops=st.lists(st.tuples(st.sampled_from(["put", "get"]),
                              st.integers(0, 50)),
                    min_size=1, max_size=80))
@settings(max_examples=20, deadline=None)
def test_lsm_never_loses_written_keys(ops):
    """Read-your-writes across memtable flushes and compactions."""
    sim = Simulator(seed=1)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    os_ = OS(sim, disk, CfqScheduler(sim, disk))
    engine = LsmEngine(os_, memtable_limit=8, l0_compaction_trigger=3)
    written = set()

    def driver():
        for op, key in ops:
            if op == "put":
                yield sim.process(engine.put(key))
                written.add(key)
            else:
                result = yield sim.process(engine.get(key))
                if key in written:
                    assert result is not None, f"lost key {key}"
                else:
                    assert result is None
        # Final audit: every written key is still resolvable.
        for key in written:
            result = yield sim.process(engine.get(key))
            assert result is not None, f"lost key {key} at audit"

    proc = sim.process(driver())
    sim.run()
    assert proc.ok


@given(extents=st.lists(st.integers(0, 30), min_size=1, max_size=120),
       capacity_extents=st.integers(min_value=2, max_value=16))
@settings(max_examples=25, deadline=None)
def test_flash_cache_lru_and_capacity_invariants(extents,
                                                 capacity_extents):
    from repro.devices import Ssd, SsdGeometry
    from repro.kernel import NoopScheduler
    from repro.kernel.flashcache import FlashCache

    sim = Simulator(seed=2)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    disk_os = OS(sim, disk, CfqScheduler(sim, disk))
    ssd = Ssd(sim, SsdGeometry(n_channels=2, chips_per_channel=2,
                               jitter_frac=0.0))
    ssd_os = OS(sim, ssd, NoopScheduler(sim, ssd))
    flash = FlashCache(sim, ssd_os, disk_os,
                       capacity_bytes=capacity_extents * 64 * KB,
                       promote_threshold=1)

    def driver():
        for extent in extents:
            yield flash.read(0, extent * 64 * KB, 4 * KB)
            assert flash.cached_extents <= flash.capacity_extents
            assert len(flash._lru) == flash.cached_extents
            assert set(flash._lru) == set(flash._extents)

    proc = sim.process(driver())
    sim.run()
    assert proc.ok
    # The most recently read extent is always resident (threshold 1).
    assert flash.cached(extents[-1] * 64 * KB, 4 * KB)


@given(slots=st.integers(1, 6),
       timeslice_ms=st.integers(5, 50),
       probes=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                       max_size=50))
def test_vmm_next_wake_invariants(slots, timeslice_ms, probes):
    from repro._units import MS
    from repro.extensions import Vmm
    sim = Simulator(seed=3)
    vmm = Vmm(sim, slots, timeslice_us=timeslice_ms * MS)
    for now in probes:
        for vm in range(slots):
            wake = vmm.next_wake(vm, now=now)
            assert wake >= now or vmm.running_vm(now) == vm
            # At the wake time, the VM really does hold the core.
            assert vmm.running_vm(max(wake, now)) == vm
            # Park never exceeds one full rotation.
            assert wake - now <= slots * timeslice_ms * MS
