"""Tests of the noise injector."""

import pytest

from repro._units import GB, KB, MS, SEC
from repro.experiments.common import build_cache_cluster, build_disk_cluster
from repro.workloads.noise import rotating_contention


def _probe_latency(sim, node, offset=500 * GB):
    done = {}

    def gen():
        start = sim.now
        yield node.os.read(0, offset, 4 * KB, pid=1)
        done["latency"] = sim.now - start

    proc = sim.process(gen())
    sim.run_until(proc)
    return done["latency"]


def test_busy_window_slows_the_disk(sim):
    env = build_disk_cluster(sim, 1, replication=1)
    node = env.nodes[0]
    baseline = _probe_latency(sim, node)
    env.injectors[0].busy_window(1 * SEC, concurrency=4)
    sim.run(until=sim.now + 100 * MS)  # let the window build a queue
    busy = _probe_latency(sim, node)
    assert busy > 2 * baseline


def test_disk_read_threads_run_until_deadline(sim):
    env = build_disk_cluster(sim, 1, replication=1)
    injector = env.injectors[0]
    injector.disk_read_threads(n_threads=2, until_us=200 * MS,
                               gap_us=1 * MS)
    sim.run()
    assert injector.injected_ios > 10
    assert sim.now < 300 * MS


def test_ssd_write_threads(sim):
    from repro.experiments.common import build_ssd_cluster
    env = build_ssd_cluster(sim, 1, replication=1)
    injector = env.injectors[0]
    injector.ssd_write_threads(n_threads=1, until_us=50 * MS)
    sim.run()
    assert injector.injected_ios > 5


def test_ssd_erase_noise_parks_chips(sim):
    from repro.experiments.common import build_ssd_cluster
    env = build_ssd_cluster(sim, 1, replication=1)
    injector = env.injectors[0]
    injector.ssd_erase_noise(rate_per_sec=1000, until_us=100 * MS)
    sim.run()
    assert injector.injected_ios > 50


def test_cache_eviction_noise(sim):
    env = build_cache_cluster(sim, 1, n_keys=500, replication=1)
    injector = env.injectors[0]
    before = env.nodes[0].os.cache.used_pages
    evicted = injector.evict_cache_fraction(0.2)
    assert evicted == pytest.approx(before * 0.2, abs=1)


def test_eviction_requires_cache(sim):
    env = build_disk_cluster(sim, 1, replication=1)
    with pytest.raises(RuntimeError):
        env.injectors[0].evict_cache_fraction(0.2)


def test_run_schedule_validates_style(sim):
    env = build_disk_cluster(sim, 1, replication=1)
    with pytest.raises(ValueError):
        env.injectors[0].run_schedule([], style="tape")


def test_run_schedule_replays_at_times(sim):
    env = build_disk_cluster(sim, 1, replication=1)
    injector = env.injectors[0]
    injector.run_schedule([(100 * MS, 50 * MS, 2),
                           (500 * MS, 50 * MS, 2)])
    sim.run()
    assert injector.injected_ios >= 4
    assert sim.now >= 500 * MS


def test_rotating_contention_visits_all_nodes(sim):
    env = build_disk_cluster(sim, 3, replication=3)
    rotating_contention(sim, env.injectors, 100 * MS, 650 * MS,
                        concurrency=2)
    sim.run()
    assert all(inj.injected_ios > 0 for inj in env.injectors)
