"""Tests of MittCache (§4.4)."""

import pytest

from repro._units import GB, KB, MS
from repro.devices import Disk, DiskParams
from repro.devices.disk_profile import profile_disk
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, OS, PageCache
from repro.mittos import MittCache, MittCfq

MODEL = profile_disk(lambda sim: Disk(sim, DiskParams(
    jitter_frac=0.0, hiccup_prob=0.0)))


def _stack(sim, stacked=True):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    sched = CfqScheduler(sim, disk)
    io_pred = MittCfq(MODEL) if stacked else None
    predictor = MittCache(io_predictor=io_pred)
    cache = PageCache(sim, 1000)
    os_ = OS(sim, disk, sched, cache=cache, predictor=predictor)
    return os_, predictor


def test_requires_cache(sim):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    sched = CfqScheduler(sim, disk)
    with pytest.raises(RuntimeError):
        OS(sim, disk, sched, cache=None, predictor=MittCache())


def test_resident_addrcheck_true(sim):
    os_, _ = _stack(sim)
    os_.cache.insert(0, 0, 4 * KB)
    assert os_.addrcheck(0, 0, 4 * KB, deadline=50.0) is True


def test_miss_small_deadline_ebusy_and_swapin(sim):
    os_, _ = _stack(sim)
    verdict = os_.addrcheck(0, 0, 4 * KB, deadline=50.0)
    assert is_ebusy(verdict)
    assert os_.cache.background_swapins == 1


def test_miss_propagates_to_io_predictor(sim):
    os_, predictor = _stack(sim)
    # Idle disk, generous deadline: the stacked MittCFQ accepts.
    assert os_.addrcheck(0, 0, 4 * KB, deadline=50 * MS) is True
    # Busy disk: propagated deadline rejected.
    for i in range(6):
        os_.read(0, (10 + i * 100) * GB, 2048 * KB, pid=9)
    assert is_ebusy(os_.addrcheck(0, 4 * GB, 4 * KB, deadline=10 * MS))


def test_unstacked_guard_uses_min_io_floor(sim):
    os_, predictor = _stack(sim, stacked=False)
    assert predictor.min_io_latency(4 * KB) == pytest.approx(1 * MS)
    assert is_ebusy(os_.addrcheck(0, 0, 4 * KB, deadline=0.1 * MS))
    assert os_.addrcheck(0, 4 * GB, 4 * KB, deadline=10 * MS) is True


def test_read_path_hit_bypasses_predictor(sim):
    os_, predictor = _stack(sim)
    os_.cache.insert(0, 0, 4 * KB)

    def gen():
        result = yield os_.read(0, 0, 4 * KB, deadline=50.0)
        return result

    proc = sim.process(gen())
    sim.run()
    assert not is_ebusy(proc.value)
    assert proc.value.cache_hit


def test_read_path_miss_consults_stacked_predictor(sim):
    os_, predictor = _stack(sim)
    for i in range(6):
        os_.read(0, (10 + i * 100) * GB, 2048 * KB, pid=9)

    def gen():
        result = yield os_.read(0, 4 * GB, 4 * KB, deadline=5 * MS)
        return result

    proc = sim.process(gen())
    sim.run()
    assert is_ebusy(proc.value)
