"""Tests of generator processes."""

from repro.sim.process import Interrupt
from tests.conftest import run_process


def test_process_returns_value(sim):
    def gen():
        yield 10
        return 99

    assert run_process(sim, gen()) == 99


def test_process_yield_number_is_timeout(sim):
    def gen():
        yield 15
        return sim.now

    assert run_process(sim, gen()) == 15


def test_process_waits_for_event_value(sim):
    ev = sim.timeout(5, value="payload")

    def gen():
        got = yield ev
        return got

    assert run_process(sim, gen()) == "payload"


def test_nested_processes_compose(sim):
    def child():
        yield 5
        return 7

    def parent():
        v = yield sim.process(child())
        return v * 2

    assert run_process(sim, parent()) == 14


def test_yield_non_waitable_fails_process(sim):
    def gen():
        yield "nope"

    proc = sim.process(gen())
    proc.add_callback(lambda e: None)
    sim.run()
    assert not proc.ok
    assert isinstance(proc.exception, TypeError)


def test_exception_propagates_to_waiter(sim):
    def child():
        yield 1
        raise KeyError("missing")

    def parent():
        try:
            yield sim.process(child())
        except KeyError:
            return "handled"

    assert run_process(sim, parent()) == "handled"


def test_interrupt_raises_inside_process(sim):
    def gen():
        try:
            yield 1000
        except Interrupt as intr:
            return f"stopped:{intr.cause}"

    proc = sim.process(gen())
    sim.schedule(10, proc.interrupt, "deadline")
    done_at = []
    proc.add_callback(lambda e: done_at.append(sim.now))
    sim.run()
    assert proc.value == "stopped:deadline"
    assert done_at == [10]  # the abandoned timer is cancelled, not leaked


def test_interrupt_after_completion_is_noop(sim):
    def gen():
        yield 1
        return "done"

    proc = sim.process(gen())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.value == "done"


def test_uncaught_interrupt_fails_process(sim):
    def gen():
        yield 1000

    proc = sim.process(gen())
    proc.add_callback(lambda e: None)
    sim.schedule(1, proc.interrupt)
    sim.run()
    assert not proc.ok
    assert isinstance(proc.exception, Interrupt)


def test_stale_event_after_interrupt_does_not_resume(sim):
    ticks = []

    def gen():
        try:
            yield sim.timeout(50)
            ticks.append("timer fired into process")
        except Interrupt:
            yield 100  # keep living past the original timer
            ticks.append("post-interrupt sleep done")
        return "ok"

    proc = sim.process(gen())
    sim.schedule(10, proc.interrupt)
    sim.run()
    assert proc.value == "ok"
    assert ticks == ["post-interrupt sleep done"]
    assert sim.now == 110


def test_process_first_step_is_deferred(sim):
    """The creator can attach callbacks before any process code runs."""
    order = []

    def gen():
        order.append("body")
        yield 0
        return None

    proc = sim.process(gen())
    order.append("creator")
    proc.add_callback(lambda e: order.append("done"))
    sim.run()
    assert order == ["creator", "body", "done"]


def test_interrupt_cancels_fused_timer_handle(sim):
    """Regression: interrupting a plain-delay sleep must not leak the
    scheduled timer.  The leak let the abandoned handle fire at the
    original deadline — a spurious kernel event, and sim.now dragged
    forward to a time nobody was waiting for."""
    def gen():
        try:
            yield 1000
        except Interrupt:
            return "stopped"

    proc = sim.process(gen())
    sim.schedule(10, proc.interrupt)
    sim.run()
    assert proc.value == "stopped"
    # A drained heap holds no live entry, and the clock never advanced
    # to the dead timer's deadline.
    assert sim.now == 10
    assert all(entry[3].cancelled for entry in sim._heap)


def test_interrupt_cancels_timeout_event_handle(sim):
    """Same leak through the evented path: detaching the last waiter
    from a Timeout cancels its heap entry too."""
    def gen():
        try:
            yield sim.timeout(1000)
        except Interrupt:
            return "stopped"

    proc = sim.process(gen())
    sim.schedule(10, proc.interrupt)
    sim.run()
    assert proc.value == "stopped"
    assert sim.now == 10
    assert all(entry[3].cancelled for entry in sim._heap)


def test_shared_timeout_survives_one_waiters_interrupt(sim):
    """The detach-cancel is last-waiter-only: a timeout someone else
    still waits on keeps its timer."""
    fired = []
    ev = sim.timeout(50)
    ev.add_callback(lambda e: fired.append(sim.now))

    def gen():
        try:
            yield ev
        except Interrupt:
            return "stopped"

    proc = sim.process(gen())
    sim.schedule(10, proc.interrupt)
    sim.run()
    assert proc.value == "stopped"
    assert fired == [50]
