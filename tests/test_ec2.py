"""Tests of the EC2 millisecond-dynamism model (§6)."""

import random

import pytest

from repro._units import SEC
from repro.workloads import Ec2NoiseModel


def test_unknown_preset_rejected():
    with pytest.raises(ValueError):
        Ec2NoiseModel("gpu")


def test_presets_exist_for_three_resources():
    for resource in ("disk", "ssd", "cache"):
        model = Ec2NoiseModel(resource)
        assert 0 < model.busy_fraction < 0.1
        assert model.mean_duration_us < 1 * SEC  # sub-second episodes


def test_override_parameters():
    model = Ec2NoiseModel("disk", busy_fraction=0.1)
    assert model.busy_fraction == 0.1


def test_busy_fraction_approximately_respected():
    model = Ec2NoiseModel("disk")
    rng = random.Random(5)
    horizon = 3600 * SEC
    episodes = model.episodes(rng, horizon)
    busy = sum(ep.duration for ep in episodes)
    assert busy / horizon == pytest.approx(model.busy_fraction, rel=0.35)


def test_episodes_are_ordered_and_disjoint():
    model = Ec2NoiseModel("disk")
    episodes = model.episodes(random.Random(1), 600 * SEC)
    for a, b in zip(episodes, episodes[1:]):
        assert b.start >= a.start + a.duration


def test_durations_are_sub_second_mostly():
    model = Ec2NoiseModel("disk")
    episodes = model.episodes(random.Random(2), 3600 * SEC)
    subsecond = sum(1 for ep in episodes if ep.duration < 1 * SEC)
    assert subsecond / len(episodes) > 0.7


def test_interarrivals_are_bursty():
    """Observation 2: irregular gaps, coefficient of variation > 1."""
    import statistics
    model = Ec2NoiseModel("disk")
    episodes = model.episodes(random.Random(3), 3600 * SEC)
    gaps = Ec2NoiseModel.interarrivals(episodes)
    cv = statistics.stdev(gaps) / statistics.mean(gaps)
    assert cv > 0.9


def test_busy_simultaneity_diminishes():
    """Observation 3: P(N busy) falls off fast; mostly 1-2 of 20 busy."""
    model = Ec2NoiseModel("disk")
    rng = random.Random(4)
    schedules = model.schedules(rng, 20, 1800 * SEC)
    probs = Ec2NoiseModel.busy_simultaneity(schedules, 1800 * SEC)
    assert probs[0] > 0.4                     # usually nobody is busy
    assert probs[1] > probs[2] > probs[3]     # diminishing
    assert 0.1 < probs[1] < 0.45
    assert sum(probs[3:]) < 0.1


def test_intensity_at_least_two():
    model = Ec2NoiseModel("disk")
    episodes = model.episodes(random.Random(6), 3600 * SEC)
    assert all(ep.intensity >= 2 for ep in episodes)
    assert max(ep.intensity for ep in episodes) <= 8


def test_schedules_are_independent_per_node():
    model = Ec2NoiseModel("disk")
    schedules = model.schedules(random.Random(7), 5, 600 * SEC)
    starts = [tuple(ep.start for ep in s) for s in schedules]
    assert len(set(starts)) == 5
