"""Tests of disk profiling / the fitted latency model."""

import pytest

from repro._units import GB, KB
from repro.devices import BlockRequest, Disk, DiskParams, IoOp
from repro.devices.disk_profile import DiskLatencyModel, profile_disk


def test_profile_recovers_disk_parameters():
    model = profile_disk(lambda sim: Disk(sim, DiskParams(
        jitter_frac=0.0, hiccup_prob=0.0)))
    assert model.seek_base_us == pytest.approx(2000.0, rel=0.15)
    assert model.seek_per_gb_us == pytest.approx(12.0, rel=0.15)
    assert model.transfer_per_kb_us == pytest.approx(10.0, rel=0.15)


def test_profile_tolerates_jitter():
    model = profile_disk(lambda sim: Disk(sim))
    assert model.seek_per_gb_us == pytest.approx(12.0, rel=0.3)


def test_seek_cost_symmetry():
    model = DiskLatencyModel(2000.0, 12.0, 10.0)
    assert model.seek_cost(0, 10 * GB) == model.seek_cost(10 * GB, 0)


def test_service_time_includes_transfer():
    model = DiskLatencyModel(2000.0, 12.0, 10.0)
    small = BlockRequest(IoOp.READ, 0, 4 * KB)
    big = BlockRequest(IoOp.READ, 0, 1024 * KB)
    delta = model.service_time(0, big) - model.service_time(0, small)
    assert delta == pytest.approx(10.0 * 1020)


def test_min_read_latency_is_zero_seek():
    model = DiskLatencyModel(2000.0, 12.0, 10.0)
    assert model.min_read_latency(4 * KB) == pytest.approx(2040.0)


def test_model_predicts_actual_service_closely():
    """On a quiet disk the fitted model should be within a few percent."""
    from repro.sim import Simulator
    model = profile_disk(lambda sim: Disk(sim, DiskParams(
        jitter_frac=0.0, hiccup_prob=0.0)))
    sim = Simulator(seed=9)
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    rng = sim.rng("check")
    errors = []

    def loop():
        for _ in range(50):
            offset = rng.randrange(0, 900 * GB)
            req = BlockRequest(IoOp.READ, offset, 16 * KB)
            predicted = model.service_time(disk.head_offset, req)
            req.submit_time = sim.now
            done = sim.event()
            req.add_callback(lambda r: done.try_succeed())
            disk.submit(req)
            yield done
            errors.append(abs(req.latency - predicted) / req.latency)

    sim.process(loop())
    sim.run()
    assert sum(errors) / len(errors) < 0.05


def test_profiling_preserves_caller_req_id_numbering():
    """The profiler's internal probe simulator resets the shared req-id
    counter; the caller's watermark must be restored so cold-cache runs
    (first `disk_latency_model()` call in a process) number their
    requests exactly like warm runs — same-seed trace digests depend on
    it (see the diff tool / accuracy-smoke gates)."""
    from repro.devices.request import req_id_watermark
    from repro.sim import Simulator

    Simulator(seed=3)  # fresh numbering, as at the start of any run
    first = BlockRequest(IoOp.READ, 0, 4 * KB)
    assert first.req_id == 0
    profile_disk(lambda sim: Disk(sim), tries=1, distance_points=2,
                 size_points=1)
    assert req_id_watermark() == 1
    assert BlockRequest(IoOp.READ, 0, 4 * KB).req_id == 1
