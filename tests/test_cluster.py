"""Tests of cluster assembly and replica placement."""

import pytest

from repro.cluster import Cluster, Network
from repro.experiments.common import build_disk_cluster


def test_replication_cannot_exceed_nodes(sim):
    env = build_disk_cluster(sim, 3)
    with pytest.raises(ValueError):
        Cluster(sim, env.nodes, Network(sim), replication=4)


def test_replicas_are_distinct_and_deterministic(sim):
    env = build_disk_cluster(sim, 10)
    for key in range(50):
        replicas = env.cluster.replicas_for(key)
        assert len(replicas) == 3
        assert len({n.node_id for n in replicas}) == 3
        assert [n.node_id for n in replicas] == \
            [n.node_id for n in env.cluster.replicas_for(key)]


def test_placement_spreads_over_cluster(sim):
    env = build_disk_cluster(sim, 10)
    primaries = {env.cluster.replicas_for(k)[0].node_id
                 for k in range(200)}
    assert len(primaries) == 10


def test_primary_fn_override(sim):
    env = build_disk_cluster(sim, 5)
    env.cluster.primary_fn = lambda key: 2
    for key in range(10):
        assert env.cluster.replicas_for(key)[0].node_id == 2


def test_node_accessor_and_len(sim):
    env = build_disk_cluster(sim, 4)
    assert len(env.cluster) == 4
    assert env.cluster.node(2).node_id == 2
