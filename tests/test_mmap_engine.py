"""Tests of the MongoDB-like mmap engine."""

import pytest

from repro._units import GB, KB, MS
from repro.devices import Disk, DiskParams
from repro.devices.disk_profile import profile_disk
from repro.engines import KeySpace, MMapEngine
from repro.errors import is_ebusy
from repro.kernel import CfqScheduler, OS, PageCache
from repro.mittos import MittCfq
from tests.conftest import run_process

MODEL = profile_disk(lambda sim: Disk(sim, DiskParams(
    jitter_frac=0.0, hiccup_prob=0.0)))


def _engine(sim, cache_pages=None, mitt=True, use_addrcheck=None):
    disk = Disk(sim, DiskParams(jitter_frac=0.0, hiccup_prob=0.0))
    sched = CfqScheduler(sim, disk)
    predictor = MittCfq(MODEL) if mitt else None
    cache = PageCache(sim, cache_pages) if cache_pages else None
    if cache is not None and predictor is not None:
        from repro.mittos import MittCache
        predictor = MittCache(io_predictor=predictor)
    os_ = OS(sim, disk, sched, cache=cache, predictor=predictor)
    ks = KeySpace(1000, value_size=1 * KB, span_bytes=10 * GB)
    return MMapEngine(os_, ks, use_addrcheck=use_addrcheck), os_


def test_addrcheck_requires_cache(sim):
    with pytest.raises(ValueError):
        _engine(sim, cache_pages=None, use_addrcheck=True)


def test_get_from_disk(sim):
    engine, _ = _engine(sim)
    record = run_process(sim, engine.get(5))
    assert record.key == 5
    assert not record.cache_hit
    assert record.engine_latency > 1 * MS


def test_get_from_cache(sim):
    engine, _ = _engine(sim, cache_pages=2000)
    engine.preload([5])
    record = run_process(sim, engine.get(5, deadline=1 * MS))
    assert record.cache_hit
    assert record.engine_latency < 100.0


def test_addrcheck_path_returns_ebusy_on_miss(sim):
    engine, os_ = _engine(sim, cache_pages=2000)
    # key not preloaded and deadline below any disk IO:
    result = run_process(sim, engine.get(7, deadline=50.0))
    assert is_ebusy(result)
    assert engine.ebusy == 1


def test_read_path_ebusy_when_disk_busy(sim):
    engine, os_ = _engine(sim, use_addrcheck=False)
    for i in range(6):
        os_.read(0, i * GB, 2048 * KB, pid=9)
    result = run_process(sim, engine.get(7, deadline=5 * MS))
    assert is_ebusy(result)


def test_no_deadline_never_ebusy(sim):
    engine, os_ = _engine(sim)
    for i in range(6):
        os_.read(0, i * GB, 2048 * KB, pid=9)
    record = run_process(sim, engine.get(7))
    assert not is_ebusy(record)


def test_put_is_buffered(sim):
    engine, os_ = _engine(sim)

    def gen():
        start = sim.now
        yield sim.process(engine.put(3))
        return sim.now - start

    assert run_process(sim, gen()) < 200.0


def test_put_populates_cache(sim):
    engine, os_ = _engine(sim, cache_pages=2000)
    run_process(sim, engine.put(3))
    offset, size = engine.keyspace.locate(3)
    assert os_.cache.resident(engine.file_id, offset, size)


def test_gets_counted(sim):
    engine, _ = _engine(sim)
    run_process(sim, engine.get(1))
    run_process(sim, engine.get(2))
    assert engine.gets == 2
